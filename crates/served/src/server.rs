//! The daemon: a Unix-socket front end over the shared schedule cache.
//!
//! Architecture (all std threads, no async runtime):
//!
//! ```text
//!            accept loop (non-blocking, polls the shutdown flag)
//!                │ one handler thread per connection
//!                ▼
//!   handler: handshake → frame loop ── admission gate ──▶ job queue
//!                                        │ full → Busy              │
//!                                        ▼                          ▼
//!                                   (shed, no queueing)      bounded worker
//!                                                            pool → shared
//!                                                            ScheduleCache
//! ```
//!
//! * **Backpressure** is load-shedding, not queueing: the admission gate
//!   caps *outstanding* compile jobs (queued + running); beyond the cap a
//!   request is answered `Busy` immediately, so a slow construction can
//!   never grow an unbounded queue in the daemon.
//! * **Deadlines** are enforced at the two points the server controls: a
//!   job that expires while queued is never started, and a handler stops
//!   waiting (answers `DeadlineExceeded`) when the deadline passes. A
//!   construction already running is not interrupted — its result still
//!   lands in the shared cache, so the work is banked, not wasted.
//! * **Drain**: on a `Shutdown` frame or SIGTERM/SIGINT the accept loop
//!   closes, handlers finish their current request, workers run the
//!   remaining admitted jobs, the store is fsynced, and the socket file is
//!   removed. New work during drain is refused with `ShuttingDown`.
//! * **Panic isolation**: a compile that panics fails *its* request with
//!   a typed `Internal` error; the worker survives (and is respawned if a
//!   panic ever escapes the per-job guard), so one poisoned operator can
//!   never kill the daemon.
//! * **Cancellation**: a client that disconnects while its job is still
//!   queued releases the job's admission permit immediately; the worker
//!   skips the orphaned job instead of compiling for nobody.

use crate::endpoint::{Endpoint, Listener, Stream};
use crate::metrics::{Metrics, ServeStats};
use crate::proto::{
    read_frame, write_frame, ErrKind, FrameError, Request, Response, WireEntry, WireEvent,
    WireKernel, WireMember, WireOutcome, MAX_PULL_KEYS, MIN_PROTO_VERSION, PROTO_VERSION,
};
use gensor::{Gensor, GensorConfig};
use hardware::GpuSpec;
use schedcache::{CachedTuner, CompileService, ScheduleCache};
use simgpu::Tuner;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use tensor_expr::OpSpec;

/// How the daemon is wired; see the module docs for the moving parts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen: a Unix-socket path (stale files are replaced at
    /// bind) or `tcp://host:port` (the fabric transport; `:0` asks the
    /// kernel for a free port, resolvable via [`Server::endpoint`]).
    pub listen: Endpoint,
    /// Shared-token auth for the TCP fabric: when set, every connection's
    /// `Hello` must carry the same token or it is refused with the typed
    /// `Unauthorized` error. `None` (the default, and the sensible choice
    /// for a local Unix socket) accepts any `Hello`.
    pub token: Option<String>,
    /// The other daemons of this cache fabric (endpoint strings, as given
    /// to `gensor serve --peers`). The daemon itself only reports these in
    /// its stats — routing is the *client's* job, so a daemon stays a
    /// plain single-node cache that any FabricClient can address.
    pub peers: Vec<String>,
    /// Chaos-drill hook: when set, the accept loop polls this failpoint
    /// site and hard-stops the daemon (no drain, no flush, listener
    /// dropped) when it fires — an in-process stand-in for SIGKILL that
    /// lets the cluster tests kill exactly one of three embedded daemons.
    pub crash_site: Option<String>,
    /// Compile worker threads.
    pub workers: usize,
    /// Max outstanding (queued + running) compile/batch jobs; beyond this
    /// the server sheds with `Busy`.
    pub max_inflight: usize,
    /// Per-request compile deadline.
    pub deadline: Duration,
    /// Whether `run` installs SIGTERM/SIGINT handlers that trigger a
    /// graceful drain (the CLI wants this; embedded tests do not).
    pub handle_signals: bool,
    /// Compact the persistent store when its file grows past this many
    /// bytes (checked periodically by the accept loop). `None` disables
    /// the daemon-side trigger; `gensor cache compact` still works.
    pub compact_bytes: Option<u64>,
    /// Learned benefit model distributed alongside the schedule cache
    /// (the `<cache>.model.json` sidecar), served verbatim to clients
    /// that ask with [`Request::FetchModel`]. The daemon treats the JSON
    /// as opaque — the *client* validates format/feature versions when
    /// it deserializes, so the served crate needs no `learned` dep.
    pub learned_model_json: Option<String>,
}

impl ServerConfig {
    /// Defaults: one worker per core, `2 × workers` in-flight, 120 s
    /// deadline, no signal handling, no auth token, no peers.
    pub fn new(listen: impl Into<Endpoint>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            listen: listen.into(),
            token: None,
            peers: Vec::new(),
            crash_site: None,
            workers: cores,
            max_inflight: 2 * cores,
            deadline: Duration::from_secs(120),
            handle_signals: false,
            compact_bytes: None,
            learned_model_json: None,
        }
    }
}

/// The daemon side of SWIM-style membership, kept behind a trait so the
/// gossip state machine can live in the `fabric` crate (which depends on
/// this one — the dependency cannot point the other way). The serve loop
/// only ever *answers* gossip: a peer's `Gossip` frame is merged and
/// acknowledged with piggybacked updates, and `Members` reads the table.
/// Probing, suspicion timeouts, and ring rebuilds belong to the agent's
/// owner (the CLI or an embedding test), which drives them on its own
/// timer. A daemon with no agent attached answers empty — gossip is
/// cleanly absent for it, never an error, which is also how pre-v7 peers
/// experience the cluster.
pub trait ClusterAgent: Send + Sync {
    /// Merge a peer's piggybacked updates (it announced itself as
    /// `from` at `incarnation`) and return this daemon's updates for the
    /// return leg.
    fn exchange(&self, from: &str, incarnation: u64, updates: Vec<WireMember>) -> Vec<WireMember>;
    /// The current membership table.
    fn members(&self) -> Vec<WireMember>;
}

/// A tuning method the daemon can serve. Gensor is kept as a config (so
/// per-request `budget` can re-instance it with fewer chains and the warm
/// path can quarter it); everything else is an opaque tuner.
enum Method {
    Gensor(GensorConfig),
    Other(Box<dyn Tuner + Send + Sync>),
}

/// Named methods the daemon serves; `standard()` mirrors the CLI's
/// `--method` choices.
pub struct MethodRegistry {
    entries: Vec<(String, Method)>,
}

impl MethodRegistry {
    /// An empty registry (for tests that register their own tuners).
    pub fn empty() -> Self {
        MethodRegistry {
            entries: Vec::new(),
        }
    }

    /// The CLI's method set: gensor, roller, ansor, cublas, pytorch.
    pub fn standard() -> Self {
        Self::standard_with_gensor(GensorConfig::default())
    }

    /// [`standard()`](Self::standard), but with a caller-supplied gensor
    /// config — the serve CLI uses this to hand the daemon a
    /// pruner-carrying (`--learned`) or reseeded config that every
    /// gensor compile then inherits.
    pub fn standard_with_gensor(cfg: GensorConfig) -> Self {
        let mut r = Self::empty();
        r.entries.push(("gensor".into(), Method::Gensor(cfg)));
        r.register("roller", Box::new(roller::Roller::default()));
        r.register("ansor", Box::new(search::Ansor::default()));
        r.register("cublas", Box::new(search::VendorLib));
        r.register("pytorch", Box::new(search::Eager));
        r
    }

    /// Add (or replace) a method under `name` (matched case-insensitively,
    /// with the CLI's aliases).
    pub fn register(&mut self, name: &str, tuner: Box<dyn Tuner + Send + Sync>) {
        let name = name.to_ascii_lowercase();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Method::Other(tuner)));
    }

    /// The name the compile path keys cache entries under for a wire
    /// method: the resolved tuner's *display* name (`"Roller"`, not
    /// `"roller"`). Fabric `Probe`/`Put` frames must address the same key
    /// space as `Compile`, or a replicated kernel would be installed
    /// under a different policy fingerprint than compiles read from.
    fn cache_method(&self, name: &str) -> Option<String> {
        Some(match self.get(name)? {
            Method::Gensor(cfg) => Gensor::with_config(cfg.clone()).name().to_string(),
            Method::Other(t) => t.name().to_string(),
        })
    }

    fn get(&self, name: &str) -> Option<&Method> {
        let canonical = match name.to_ascii_lowercase().as_str() {
            "vendor" => "cublas".to_string(),
            "eager" => "pytorch".to_string(),
            other => other.to_string(),
        };
        self.entries
            .iter()
            .find(|(n, _)| *n == canonical)
            .map(|(_, m)| m)
    }
}

/// Why `run` returned, plus the final counters.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// `"shutdown-frame"`, `"signal"`, or `"crash"` (the chaos drill's
    /// simulated SIGKILL — no drain ran).
    pub reason: &'static str,
    /// Final statistics at drain time.
    pub stats: ServeStats,
}

/// Admission gate: a permit counter, not a queue. `try_acquire` never
/// blocks — over the cap the caller sheds with `Busy`.
struct Gate {
    inflight: AtomicU64,
    cap: u64,
}

impl Gate {
    fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit(self.clone())),
                Err(now) => cur = now,
            }
        }
    }
}

/// RAII permit: releases its gate slot when the job finishes (or is
/// dropped un-run at drain).
struct Permit(Arc<Gate>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    accepted: Instant,
    deadline: Duration,
    /// The connection's distributed trace context `(trace_id,
    /// parent_span)` at dispatch time; `(0, 0)` when the client set none.
    /// Stamped onto the job's `serve.request` span.
    trace: (u64, u64),
    reply: mpsc::Sender<Response>,
    /// The admission permit, shared with the dispatching handler so a
    /// cancelled job's slot can be released while the job still sits in
    /// the queue. A worker *takes* the permit when it starts the job
    /// (`Mutex::take` is exclusive, so handler and worker cannot both
    /// release it); it is dropped — releasing the slot — when the job
    /// finishes or is skipped.
    permit: Arc<Mutex<Option<Permit>>>,
    /// Set by the handler when the client disconnected before the job
    /// started; the worker skips it instead of compiling for nobody.
    cancelled: Arc<AtomicBool>,
}

/// SIGTERM/SIGINT flag (set from the signal handler; an atomic store is
/// async-signal-safe).
static TERMINATED: AtomicBool = AtomicBool::new(false);

/// SIGUSR1 flag: "dump the flight recorder now". Consumed (swapped back
/// to false) by the accept loop.
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_sig: i32) {
    TERMINATED.store(true, Ordering::SeqCst);
}

extern "C" fn on_usr1(_sig: i32) {
    DUMP_REQUESTED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // Direct libc `signal(2)` binding: the workspace builds offline with
    // no libc crate, and an atomic flag is all the handler needs.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGUSR1: i32 = 10;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
        signal(SIGUSR1, on_usr1);
    }
}

/// The daemon. `bind` + `run`; `handle()` for programmatic shutdown.
pub struct Server {
    cfg: ServerConfig,
    listener: Listener,
    /// The endpoint actually bound (TCP port 0 resolved).
    bound: Endpoint,
    shared: Arc<Shared>,
}

/// State every handler and worker shares.
struct Shared {
    cache: Arc<ScheduleCache>,
    registry: MethodRegistry,
    metrics: Metrics,
    gate: Arc<Gate>,
    shutdown: AtomicBool,
    started: Instant,
    peers: Vec<String>,
    /// The gossip agent, when one is attached (see [`ClusterAgent`]).
    /// Behind a mutex because attachment happens after `bind` (the agent
    /// usually wants the bound endpoint first); reads clone the `Arc`.
    cluster: Mutex<Option<Arc<dyn ClusterAgent>>>,
}

impl Shared {
    fn cluster(&self) -> Option<Arc<dyn ClusterAgent>> {
        self.cluster
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn draining(&self, handle_signals: bool) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || (handle_signals && TERMINATED.load(Ordering::SeqCst))
    }

    fn stats(&self) -> ServeStats {
        self.metrics
            .snapshot(self.started, self.cache.stats(), &self.peers)
    }

    /// Run one compile through the shared cache. This is where every
    /// client process's requests meet one single-flight domain.
    fn compile(
        &self,
        op: &OpSpec,
        gpu: &GpuSpec,
        method: &str,
        budget: Option<u32>,
    ) -> Result<(simgpu::CompiledKernel, WireOutcome), (ErrKind, String)> {
        let built = match self.registry.get(method) {
            None => Err((
                ErrKind::UnknownMethod,
                format!("no method '{method}' registered"),
            )),
            Some(Method::Gensor(cfg)) => {
                let mut cfg = cfg.clone();
                if let Some(b) = budget {
                    cfg.chains = (b as usize).max(1);
                }
                let primary = Gensor::with_config(cfg);
                let tuner = CachedTuner::for_gensor(&primary, self.cache.clone());
                // The verified path: a schedule that fails static
                // analysis (corrupted store record, builder bug) is a
                // typed error on the wire, never a served kernel.
                match tuner.compile_verified(op, gpu) {
                    Ok((k, o)) => Ok((k, o.into())),
                    Err(rej) => Err((ErrKind::Rejected, rej.to_string())),
                }
            }
            Some(Method::Other(t)) => {
                let tuner = CachedTuner::new(t.as_ref(), self.cache.clone());
                match tuner.compile_verified(op, gpu) {
                    Ok((k, o)) => Ok((k, o.into())),
                    Err(rej) => Err((ErrKind::Rejected, rej.to_string())),
                }
            }
        };
        match built {
            // Chaos hook: corrupt the *outgoing* schedule after the
            // daemon's own verify gate passed it — the wire frame stays
            // well-formed, so only a receiver that re-verifies content
            // (the fabric trust boundary) can catch it.
            Ok((mut kernel, outcome))
                if faults::armed() && faults::check("served.reply.tamper").is_some() =>
            {
                obs::log!(
                    Warn,
                    "serve: failpoint 'served.reply.tamper' fired: corrupting outgoing schedule"
                );
                if let Some(v) = kernel.etir.vthreads.first_mut() {
                    *v = 0;
                }
                Ok((kernel, outcome))
            }
            other => other,
        }
    }

    /// Precompile a zoo model's unique operators through the shared cache.
    fn batch(&self, model: &str, batch: u64, gpu: &GpuSpec, method: &str) -> Response {
        let graph = match model.to_ascii_lowercase().as_str() {
            "resnet50" => models::zoo::resnet50(batch),
            "resnet34" => models::zoo::resnet34(batch),
            "mobilenetv2" | "mobilenet" => models::zoo::mobilenet_v2(batch),
            "bert" | "bert-small" => models::zoo::bert_small(batch, 128),
            "gpt2" => models::zoo::gpt2(batch, 1024),
            other => {
                return Response::Error {
                    kind: ErrKind::UnknownModel,
                    message: format!("no model '{other}' in the zoo"),
                }
            }
        };
        // `precompile` fans out internally; half the pool keeps two
        // concurrent batches from oversubscribing the host.
        let fanout = (std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            / 2)
        .max(1);
        let report = match self.registry.get(method) {
            None => {
                return Response::Error {
                    kind: ErrKind::UnknownMethod,
                    message: format!("no method '{method}' registered"),
                }
            }
            Some(Method::Gensor(cfg)) => {
                let primary = Gensor::with_config(cfg.clone());
                let tuner = CachedTuner::for_gensor(&primary, self.cache.clone());
                CompileService::with_workers(fanout).precompile(&tuner, &[&graph], gpu)
            }
            Some(Method::Other(t)) => {
                let tuner = CachedTuner::new(t.as_ref(), self.cache.clone());
                CompileService::with_workers(fanout).precompile(&tuner, &[&graph], gpu)
            }
        };
        Response::BatchDone {
            requested: report.requested as u64,
            built: report.built as u64,
            hits: report.hits as u64,
            coalesced: report.coalesced as u64,
            failed: report.failed as u64,
            wall_s: report.wall_s,
        }
    }
}

/// Cloneable handle for programmatic shutdown (tests, embedding).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Trigger the same graceful drain a `Shutdown` frame does.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Current statistics.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

impl Server {
    /// Bind the endpoint (recovering a stale Unix socket file or dead TCP
    /// bind, see [`Endpoint::bind`]) and assemble the daemon.
    pub fn bind(
        cfg: ServerConfig,
        cache: Arc<ScheduleCache>,
        registry: MethodRegistry,
    ) -> std::io::Result<Server> {
        // Chaos runs configure failpoints through the environment; a
        // daemon embedded in tests (no CLI in front) must honour them
        // too. A bad spec is logged, never fatal.
        if let Err(e) = faults::init_from_env() {
            obs::log!(Warn, "serve: ignoring bad {}: {e}", faults::ENV_VAR);
        }
        let listener = cfg.listen.bind()?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_endpoint(&cfg.listen);
        let shared = Arc::new(Shared {
            cache,
            registry,
            metrics: Metrics::default(),
            gate: Arc::new(Gate {
                inflight: AtomicU64::new(0),
                cap: cfg.max_inflight.max(1) as u64,
            }),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            peers: cfg.peers.clone(),
            cluster: Mutex::new(None),
        });
        Ok(Server {
            cfg,
            listener,
            bound,
            shared,
        })
    }

    /// The endpoint actually bound — for `tcp://…:0` this carries the
    /// kernel-assigned port, which is how embedded cluster tests learn
    /// their collision-free addresses.
    pub fn endpoint(&self) -> &Endpoint {
        &self.bound
    }

    /// A handle usable from other threads while `run` blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Attach the gossip agent answering this daemon's `Gossip` /
    /// `Members` frames (see [`ClusterAgent`]). Called between `bind`
    /// and `run` — the agent usually needs the bound endpoint, which
    /// `bind` resolves. Without an attachment the daemon answers gossip
    /// frames with empty tables (cleanly disabled).
    pub fn attach_cluster(&self, agent: Arc<dyn ClusterAgent>) {
        *self
            .shared
            .cluster
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(agent);
    }

    /// Serve until drained (`Shutdown` frame, `ServerHandle::shutdown`, or
    /// SIGTERM/SIGINT when configured). Returns the final counters.
    pub fn run(self) -> std::io::Result<DrainReport> {
        if self.cfg.handle_signals {
            TERMINATED.store(false, Ordering::SeqCst);
            install_signal_handlers();
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = self.shared.clone();
                // Self-healing: `worker_loop` already isolates per-job
                // panics, so this outer guard only trips if a panic
                // escapes the job guard (a bug in the loop itself). Even
                // then the pool heals: the loop is restarted in place
                // rather than silently shrinking the pool.
                std::thread::spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, &rx))) {
                        Ok(()) => return,
                        Err(payload) => {
                            shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                            obs::counter_inc!(
                                "gensor_served_worker_panics",
                                "Worker panics caught (per-job or loop-level); the pool self-heals"
                            );
                            obs::log!(
                                Warn,
                                "serve: worker loop panicked, respawning: {}",
                                faults::panic_message(payload.as_ref())
                            );
                        }
                    }
                })
            })
            .collect();

        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut last_compact_check = Instant::now();
        loop {
            if self.shared.draining(self.cfg.handle_signals) {
                break;
            }
            // The chaos drill's simulated SIGKILL: stop dead. No drain, no
            // store flush, no socket cleanup — the listener drops so new
            // connects are refused, and the shutdown flag makes handler
            // threads abandon their connections without replying, which is
            // what their clients would see from a real process kill.
            if let Some(site) = &self.cfg.crash_site {
                if faults::armed() && faults::check(site).is_some() {
                    obs::log!(Warn, "serve: failpoint '{site}' fired: simulating crash");
                    // Last act before "dying": preserve the recent past.
                    // A real SIGKILL would leave nothing; the simulated
                    // one leaves the black box, which is the point of
                    // carrying one.
                    obs::flight::dump("crash");
                    self.shared.shutdown.store(true, Ordering::SeqCst);
                    return Ok(DrainReport {
                        reason: "crash",
                        stats: self.shared.stats(),
                    });
                }
            }
            // Operator-requested dump (`kill -USR1 <daemon>`): snapshot
            // the flight recorder without disturbing service.
            if self.cfg.handle_signals && DUMP_REQUESTED.swap(false, Ordering::SeqCst) {
                match obs::flight::dump("sigusr1") {
                    Some(path) => {
                        obs::log!(Info, "serve: flight recorder dumped to {}", path.display())
                    }
                    None => obs::log!(Warn, "serve: SIGUSR1 but no flight dump written"),
                }
            }
            // Periodic store maintenance, checked at a coarse interval so
            // the accept loop stays cheap:
            //  * fsync the append batch, bounding how much banked work a
            //    crash between syncs can lose;
            //  * compaction: a long-lived daemon rewriting the same keys
            //    grows its JSONL store with superseded lines; past the
            //    configured size, rewrite it down to the live set.
            if last_compact_check.elapsed() >= Duration::from_secs(10) {
                last_compact_check = Instant::now();
                if let Err(e) = self.shared.cache.flush() {
                    obs::log!(Warn, "serve: store fsync failed: {e}");
                }
                if let Some(max) = self.cfg.compact_bytes {
                    if let Err(e) = self.shared.cache.compact_if_larger_than(max) {
                        obs::log!(Warn, "serve: store compaction failed: {e}");
                    }
                }
            }
            match self.listener.accept() {
                Ok(stream) => {
                    obs::counter_inc!("gensor_serve_connections_total", "Connections accepted");
                    self.shared
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = self.shared.clone();
                    let tx = tx.clone();
                    let cfg = self.cfg.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared, &tx, &cfg)
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }

        // Drain: handlers observe the flag (their reads time out every
        // 100 ms) and exit after their current request; workers run the
        // already-admitted queue dry once the last sender drops.
        let reason = if self.shared.shutdown.load(Ordering::SeqCst) {
            "shutdown-frame"
        } else {
            "signal"
        };
        // A drain is the last chance to see what the daemon was doing;
        // dump the black box alongside the final counters.
        obs::flight::dump(reason);
        for h in handlers {
            let _ = h.join();
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        self.shared.cache.flush()?;
        if let Endpoint::Unix(path) = &self.bound {
            let _ = std::fs::remove_file(path);
        }
        Ok(DrainReport {
            reason,
            stats: self.shared.stats(),
        })
    }
}

/// Worker: pull admitted jobs, skip the cancelled and the already-expired,
/// compile the rest against the shared cache — each job inside its own
/// panic guard, so a poisoned operator fails one request, not the pool.
fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        let job = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: drained
        };
        // Take the permit before the cancellation check: from here on the
        // handler's cancel path finds it already gone and cannot release
        // a slot the worker is using.
        let permit = job.permit.lock().unwrap_or_else(|p| p.into_inner()).take();
        if job.cancelled.load(Ordering::SeqCst) {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            obs::counter_inc!(
                "gensor_serve_cancelled_total",
                "Queued jobs dropped un-run because their client disconnected"
            );
            continue; // `permit` (if any) drops here, freeing the slot
        }
        let waited = job.accepted.elapsed();
        if waited >= job.deadline {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Response::Error {
                kind: ErrKind::DeadlineExceeded,
                message: format!("expired after {:.1} s in queue", waited.as_secs_f64()),
            });
            continue;
        }
        let response = match catch_unwind(AssertUnwindSafe(|| process_job(shared, &job, waited))) {
            Ok(r) => r,
            Err(payload) => {
                shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                obs::counter_inc!(
                    "gensor_served_worker_panics",
                    "Worker panics caught (per-job or loop-level); the pool self-heals"
                );
                let reason = faults::panic_message(payload.as_ref());
                obs::log!(Warn, "serve: compile job panicked: {reason}");
                Response::Error {
                    kind: ErrKind::Internal,
                    message: format!("compile job panicked: {reason}"),
                }
            }
        };
        // The handler may have stopped waiting (deadline, disconnect);
        // the work is still banked in the cache, only the reply is
        // dropped.
        let _ = job.reply.send(response);
        drop(permit);
    }
}

/// Answer one admitted job. Runs inside the worker's per-job panic guard.
fn process_job(shared: &Shared, job: &Job, waited: Duration) -> Response {
    // The chaos harness's stand-in for "the tuner has a bug": any policy
    // on this site panics here, inside the guard.
    if let Some(_action) = faults::check("served.worker") {
        panic!("failpoint 'served.worker': injected worker failure");
    }
    match &job.request {
        Request::Compile {
            op,
            gpu,
            method,
            budget,
        } => {
            let _sp = obs::span!(
                "serve.request",
                kind = "compile",
                method = method.as_str(),
                op = op.label(),
                queued_us = waited.as_micros() as u64,
                trace = job.trace.0,
                parent = job.trace.1
            );
            let t_service = Instant::now();
            match shared.compile(op, gpu, method, *budget) {
                Ok((kernel, outcome)) => {
                    shared.metrics.record_compile(
                        outcome,
                        waited.as_micros() as u64,
                        t_service.elapsed().as_micros() as u64,
                    );
                    Response::Compiled {
                        outcome,
                        kernel: (&kernel).into(),
                    }
                }
                Err((kind, message)) => Response::Error { kind, message },
            }
        }
        Request::Batch {
            model,
            batch,
            gpu,
            method,
        } => {
            let _sp = obs::span!(
                "serve.request",
                kind = "batch",
                method = method.as_str(),
                model = model.as_str(),
                trace = job.trace.0,
                parent = job.trace.1
            );
            let r = shared.batch(model, *batch, gpu, method);
            if matches!(r, Response::BatchDone { .. }) {
                shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .latency
                    .record_us(job.accepted.elapsed().as_micros() as u64);
            }
            r
        }
        other => Response::Error {
            kind: ErrKind::Internal,
            message: format!("non-work frame reached the pool: {other:?}"),
        },
    }
}

/// Per-connection frame loop.
fn handle_connection(stream: Stream, shared: &Shared, tx: &mpsc::Sender<Job>, cfg: &ServerConfig) {
    let mut stream = stream;
    // Short read timeout so idle handlers poll the drain flag; writes get
    // a generous bound so a wedged client cannot pin a handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    // Handshake: the first frame must be a version match carrying the
    // right token (when the daemon requires one).
    let hello = loop {
        match server_read(&mut stream) {
            Ok(req) => break req,
            Err(FrameError::IdleTimeout) => {
                if shared.draining(cfg.handle_signals) {
                    return;
                }
            }
            Err(_) => {
                shared.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    };
    match hello {
        Request::Hello { proto, ref token }
            if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto) =>
        {
            if cfg.token.is_some() && *token != cfg.token {
                shared.metrics.auth_failures.fetch_add(1, Ordering::Relaxed);
                obs::counter_inc!(
                    "gensor_serve_auth_failures_total",
                    "Connections refused for a missing or wrong shared token"
                );
                let _ = server_write(
                    &mut stream,
                    &Response::Error {
                        kind: ErrKind::Unauthorized,
                        message: "this daemon requires a shared token (serve --token)".into(),
                    },
                );
                return;
            }
            // Speak the lower of the two versions; the reply tells the
            // client which one won.
            if server_write(&mut stream, &Response::Hello { proto }).is_err() {
                return;
            }
        }
        Request::Hello { proto, .. } => {
            shared.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
            let _ = server_write(
                &mut stream,
                &Response::Error {
                    kind: ErrKind::UnsupportedProto,
                    message: format!(
                        "server speaks proto {MIN_PROTO_VERSION}..={PROTO_VERSION}, \
                         client sent {proto}"
                    ),
                },
            );
            return;
        }
        other => {
            shared.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
            let _ = server_write(
                &mut stream,
                &Response::Error {
                    kind: ErrKind::Malformed,
                    message: format!("connection must open with Hello, got {other:?}"),
                },
            );
            return;
        }
    }

    // The connection's distributed trace context, set by a `Trace` frame
    // and stamped onto every subsequent work span. `(0, 0)` = none.
    let mut conn_trace: (u64, u64) = (0, 0);
    loop {
        let request = match server_read(&mut stream) {
            Ok(req) => req,
            Err(FrameError::IdleTimeout) => {
                if shared.draining(cfg.handle_signals) {
                    return;
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(
                e @ (FrameError::TooLarge(_) | FrameError::Malformed(_) | FrameError::Truncated),
            ) => {
                shared.metrics.proto_errors.fetch_add(1, Ordering::Relaxed);
                let _ = server_write(
                    &mut stream,
                    &Response::Error {
                        kind: ErrKind::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        obs::counter_inc!(
            "gensor_serve_requests_total",
            "Frames dispatched (any kind)"
        );
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let reply = match request {
            Request::Hello { .. } => Response::Hello {
                proto: PROTO_VERSION,
            },
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats {
                server: shared.stats(),
            },
            Request::Metrics => Response::Metrics {
                text: obs::prometheus::render(),
            },
            Request::Trace {
                trace_id,
                parent_span,
            } => {
                conn_trace = if trace_id == 0 {
                    (0, 0)
                } else {
                    (trace_id, parent_span)
                };
                Response::TraceAck
            }
            // Answered inline: reading the ring is a lock + clone, and a
            // trace pull must work even when the worker pool is saturated
            // (that is exactly when someone wants the trace).
            Request::TraceDump => match obs::flight::installed() {
                Some(rec) => Response::TraceDumped {
                    tag: rec.tag().to_string(),
                    events: rec.events().iter().map(WireEvent::from).collect(),
                },
                None => Response::TraceDumped {
                    tag: String::new(),
                    events: Vec::new(),
                },
            },
            Request::FetchModel => Response::Model {
                json: cfg.learned_model_json.clone(),
            },
            // Fabric frames are answered inline: a probe is one map read,
            // a put is verify + insert — neither competes with compiles
            // for the admission gate or the worker pool.
            // Both canonicalize the wire method ("roller") to the cache-key
            // name the compile path uses (the tuner's display name,
            // "Roller") so fabric frames and compiles share one key space.
            Request::Probe { op, gpu, method } => match shared.registry.cache_method(&method) {
                Some(method) => Response::Probed {
                    cached: shared.cache.peek(&op, &gpu, &method).is_some(),
                },
                None => Response::Error {
                    kind: ErrKind::UnknownMethod,
                    message: format!("no method '{method}' registered"),
                },
            },
            Request::Put {
                op,
                gpu,
                method,
                kernel,
            } => {
                if shared.draining(cfg.handle_signals) {
                    Response::ShuttingDown
                } else {
                    match shared.registry.cache_method(&method) {
                        Some(method) => {
                            match shared.cache.install(&op, &gpu, &method, (*kernel).into()) {
                                Ok(installed) => {
                                    shared.metrics.puts.fetch_add(1, Ordering::Relaxed);
                                    Response::PutDone { installed }
                                }
                                Err(rej) => Response::Error {
                                    kind: ErrKind::Rejected,
                                    message: rej.to_string(),
                                },
                            }
                        }
                        None => Response::Error {
                            kind: ErrKind::UnknownMethod,
                            message: format!("no method '{method}' registered"),
                        },
                    }
                }
            }
            // Self-healing frames (v7) are answered inline: gossip and
            // digest reads must work even when the worker pool is
            // saturated — a probe that sheds with Busy would look exactly
            // like a dead daemon to the failure detector.
            Request::Gossip {
                from,
                incarnation,
                updates,
            } => {
                obs::counter_inc!(
                    "gensor_serve_gossip_total",
                    "Gossip exchanges answered (membership piggyback + liveness)"
                );
                match shared.cluster() {
                    Some(agent) => Response::GossipAck {
                        updates: agent.exchange(&from, incarnation, updates),
                    },
                    // No agent: gossip is cleanly absent for this daemon.
                    None => Response::GossipAck {
                        updates: Vec::new(),
                    },
                }
            }
            Request::PingReq { target } => {
                // Indirect probe: dial the target on the asker's behalf
                // with a tight budget — this runs on the handler thread
                // and must not pin it for long. The drop-probe failpoint
                // simulates the relay losing the probe (asymmetric
                // partition), which must read as "no" rather than hang.
                let ok = if faults::armed() && faults::check("served.pingreq.drop").is_some() {
                    obs::log!(
                        Warn,
                        "serve: failpoint 'served.pingreq.drop' fired: dropping indirect probe"
                    );
                    false
                } else {
                    let probe_cfg = crate::client::ClientConfig {
                        connect_timeout: Duration::from_millis(300),
                        request_timeout: Duration::from_millis(500),
                        retries: 1,
                        backoff_base: Duration::from_millis(1),
                        connect_budget: Duration::from_millis(500),
                        token: cfg.token.clone(),
                    };
                    crate::client::Client::connect_with(target.as_str(), probe_cfg)
                        .and_then(|mut c| c.ping())
                        .is_ok()
                };
                Response::PingReqDone { ok }
            }
            Request::Members => match shared.cluster() {
                Some(agent) => Response::Members {
                    members: agent.members(),
                },
                None => Response::Members {
                    members: Vec::new(),
                },
            },
            Request::CacheDigest => {
                let d = shared.cache.digest();
                Response::CacheDigest {
                    root: d.root,
                    shards: d.shards,
                    count: d.count,
                }
            }
            Request::CacheKeys { shard } => Response::CacheKeys {
                keys: shared.cache.keys_in_shard(shard as usize),
            },
            Request::CachePull { keys } => {
                let capped = &keys[..keys.len().min(MAX_PULL_KEYS)];
                let entries: Vec<WireEntry> = shared
                    .cache
                    .export(capped)
                    .into_iter()
                    .map(|e| WireEntry {
                        key: e.key,
                        op_label: e.op_label,
                        method: e.method,
                        kernel: WireKernel::from(&e.kernel),
                    })
                    .collect();
                obs::counter_add!(
                    "gensor_serve_repair_served_total",
                    "Cache entries streamed out to repairing peers",
                    entries.len() as u64
                );
                Response::CacheEntries { entries }
            }
            Request::CachePush { entries } => {
                if shared.draining(cfg.handle_signals) {
                    Response::ShuttingDown
                } else {
                    let (mut installed, mut rejected) = (0u64, 0u64);
                    for entry in entries {
                        match shared.cache.install_raw(schedcache::CacheEntry {
                            key: entry.key,
                            op_label: entry.op_label,
                            method: entry.method,
                            kernel: entry.kernel.into(),
                        }) {
                            Ok(true) => installed += 1,
                            Ok(false) => {}
                            Err(_) => rejected += 1,
                        }
                    }
                    if rejected > 0 {
                        obs::counter_add!(
                            "gensor_serve_repair_rejected_total",
                            "Pushed repair entries refused by the provenance verifier",
                            rejected
                        );
                    }
                    Response::CachePushed {
                        installed,
                        rejected,
                    }
                }
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = server_write(&mut stream, &Response::ShuttingDown);
                return;
            }
            work @ (Request::Compile { .. } | Request::Batch { .. }) => {
                if shared.draining(cfg.handle_signals) {
                    Response::ShuttingDown
                } else {
                    match shared.gate.try_acquire() {
                        None => {
                            obs::counter_inc!(
                                "gensor_serve_shed_total",
                                "Requests refused with Busy by the admission gate"
                            );
                            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                            Response::Busy {
                                inflight: shared.gate.inflight.load(Ordering::Relaxed),
                                max_inflight: shared.gate.cap,
                            }
                        }
                        Some(permit) => dispatch_work(
                            work,
                            conn_trace,
                            shared,
                            tx,
                            cfg.deadline,
                            permit,
                            &stream,
                        ),
                    }
                }
            }
        };
        if server_write(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// [`read_frame`] behind the `served.socket.read` failpoint, so the chaos
/// suite can break the transport without a misbehaving client.
fn server_read(stream: &mut Stream) -> Result<Request, FrameError> {
    if faults::armed() && faults::check("served.socket.read").is_some() {
        return Err(FrameError::Io(faults::injected_err("served.socket.read")));
    }
    read_frame::<_, Request>(stream)
}

/// [`write_frame`] behind the `served.socket.write` failpoint.
fn server_write(stream: &mut Stream, resp: &Response) -> Result<(), FrameError> {
    if faults::armed() && faults::check("served.socket.write").is_some() {
        return Err(FrameError::Io(faults::injected_err("served.socket.write")));
    }
    write_frame(stream, resp)
}

/// Has the peer hung up? A zero-byte non-blocking `MSG_PEEK` is EOF;
/// pending bytes or `EWOULDBLOCK` mean the client is still there. Direct
/// `recv(2)` binding in the same spirit as `install_signal_handlers`:
/// the workspace builds offline with no libc crate. Works identically on
/// both transports — `recv(2)` takes any connected socket fd.
fn client_gone(stream: &Stream) -> bool {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn recv(fd: i32, buf: *mut u8, len: usize, flags: i32) -> isize;
    }
    const MSG_PEEK: i32 = 0x02;
    const MSG_DONTWAIT: i32 = 0x40;
    let mut probe = [0u8; 1];
    let n = unsafe {
        recv(
            stream.as_raw_fd(),
            probe.as_mut_ptr(),
            probe.len(),
            MSG_PEEK | MSG_DONTWAIT,
        )
    };
    match n {
        0 => true,           // EOF: peer closed
        n if n > 0 => false, // pipelined bytes: alive
        _ => !matches!(
            std::io::Error::last_os_error().kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
        ),
    }
}

/// Enqueue one admitted job and wait (bounded by the deadline) for the
/// pool's answer, watching the client socket so a disconnect cancels a
/// job that has not started yet.
fn dispatch_work(
    work: Request,
    trace: (u64, u64),
    shared: &Shared,
    tx: &mpsc::Sender<Job>,
    deadline: Duration,
    permit: Permit,
    stream: &Stream,
) -> Response {
    if faults::armed() && faults::check("served.dispatch").is_some() {
        return Response::Error {
            kind: ErrKind::Internal,
            message: "failpoint 'served.dispatch': injected dispatch failure".into(),
        };
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let accepted = Instant::now();
    let permit = Arc::new(Mutex::new(Some(permit)));
    let cancelled = Arc::new(AtomicBool::new(false));
    let job = Job {
        request: work,
        accepted,
        deadline,
        trace,
        reply: reply_tx,
        permit: permit.clone(),
        cancelled: cancelled.clone(),
    };
    if tx.send(job).is_err() {
        return Response::Error {
            kind: ErrKind::Internal,
            message: "worker pool is gone".into(),
        };
    }
    // Small grace past the deadline so a worker's own deadline verdict
    // (sent just under the wire) wins over ours. The wait is sliced so we
    // can notice a client hang-up and cancel a still-queued job instead of
    // compiling for nobody.
    let hard_deadline = accepted + deadline + Duration::from_millis(250);
    loop {
        let now = Instant::now();
        if now >= hard_deadline {
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                kind: ErrKind::DeadlineExceeded,
                message: format!(
                    "no result within {:.1} s; the construction keeps running and will be cached",
                    deadline.as_secs_f64()
                ),
            };
        }
        let slice = (hard_deadline - now).min(Duration::from_millis(50));
        match reply_rx.recv_timeout(slice) {
            Ok(r) => return r,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Response::Error {
                    kind: ErrKind::Internal,
                    message: "worker dropped the job".into(),
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if client_gone(stream) {
                    // Cancel-before-release: a worker that already took
                    // the permit owns the slot (the job started and will
                    // be banked); otherwise the slot frees right now, not
                    // when the dead job finally reaches the front.
                    cancelled.store(true, Ordering::SeqCst);
                    drop(permit.lock().unwrap_or_else(|p| p.into_inner()).take());
                    return Response::Error {
                        kind: ErrKind::Internal,
                        message: "client disconnected before the job started; cancelled".into(),
                    };
                }
            }
        }
    }
}
