//! The wire protocol: versioned, length-prefixed JSON frames.
//!
//! Every frame is a 4-byte big-endian payload length followed by exactly
//! that many bytes of JSON (one `Request` or `Response`). The format is
//! deliberately boring:
//!
//! * **Self-delimiting** — the length prefix makes framing independent of
//!   payload content, so a reader never scans for delimiters inside JSON.
//! * **Bounded** — a header announcing more than [`MAX_FRAME_BYTES`] is
//!   rejected *before* any allocation, so a garbage header cannot make the
//!   daemon allocate gigabytes.
//! * **Versioned** — a connection opens with `Hello { proto }`; both ends
//!   accept the [`MIN_PROTO_VERSION`]`..=`[`PROTO_VERSION`] range and speak
//!   the lower of the two versions, refusing anything outside it with a
//!   typed error instead of mis-parsing newer frames.
//! * **Failure-typed** — decode problems are classified
//!   ([`FrameError::Closed`] / [`Truncated`] / [`TooLarge`] /
//!   [`Malformed`]) so the server can tell a clean disconnect from a
//!   protocol violation and count them separately.
//!
//! [`Truncated`]: FrameError::Truncated
//! [`TooLarge`]: FrameError::TooLarge
//! [`Malformed`]: FrameError::Malformed

use crate::metrics::ServeStats;
use etir::Etir;
use hardware::GpuSpec;
use serde::{Deserialize, Serialize};
use simgpu::{CompiledKernel, KernelReport};
use std::io::{Read, Write};
use tensor_expr::OpSpec;

/// Protocol version; bumped on any incompatible frame change. The
/// handshake accepts [`MIN_PROTO_VERSION`]`..=PROTO_VERSION` and the
/// connection speaks the lower of the two ends' versions. v2 added the
/// `Metrics` frame pair
/// (Prometheus text exposition) and the queue/service latency split in
/// [`ServeStats`]. v3 added the robustness counters (`worker_panics`,
/// `cancelled` in [`ServeStats`], `recovered_truncated` in the cache
/// snapshot) and the `failed` count in [`Response::BatchDone`]. v4 added
/// the learned-model distribution pair ([`Request::FetchModel`] /
/// [`Response::Model`]) so clients can pull the benefit model that was
/// trained against the server's schedule cache. v5 is the fabric
/// protocol: shared-token auth folded into `Hello` (with the typed
/// [`ErrKind::Unauthorized`] refusal), the replication pair
/// ([`Request::Put`] / [`Response::PutDone`]) for write-through and
/// read-repair, the freshness probe ([`Request::Probe`] /
/// [`Response::Probed`]), and the daemon's peer list in [`ServeStats`].
/// v6 is the observability plane: the connection-scoped trace context
/// ([`Request::Trace`] / [`Response::TraceAck`]) stamped onto every
/// subsequent request's span, and the flight-recorder pull
/// ([`Request::TraceDump`] / [`Response::TraceDumped`]). v6 only *adds*
/// frames — every v5 frame still parses unchanged — so the handshake
/// accepts v5 clients. v7 is the self-healing layer: SWIM-style
/// membership exchange ([`Request::Gossip`] / [`Response::GossipAck`],
/// [`Request::PingReq`] / [`Response::PingReqDone`],
/// [`Request::Members`] / [`Response::Members`]) and anti-entropy cache
/// repair ([`Request::CacheDigest`], [`Request::CacheKeys`],
/// [`Request::CachePull`], [`Request::CachePush`]). Like v6, v7 only
/// *adds* frames; a v5/v6 peer keeps compiling with gossip and repair
/// cleanly disabled (clients gate the new methods on the negotiated
/// version).
pub const PROTO_VERSION: u32 = 7;

/// Oldest protocol version this build still speaks. v6 and v7 added
/// frames without changing any v5 frame, so v5 peers remain fully
/// serviceable.
pub const MIN_PROTO_VERSION: u32 = 5;

/// Upper bound on one frame's JSON payload (32 MiB — far above any real
/// schedule, far below an allocation-of-death).
pub const MAX_FRAME_BYTES: usize = 32 << 20;

/// Most entries a server packs into one [`Response::CacheEntries`] reply,
/// keeping repair frames far under [`MAX_FRAME_BYTES`]. Clients chunk
/// their [`Request::CachePull`]s to this size too.
pub const MAX_PULL_KEYS: usize = 256;

/// Client → server frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens every connection: the client's protocol version and, when
    /// the server was started with `--token`, the shared secret. A server
    /// with a token configured refuses a missing or mismatched token with
    /// the typed [`ErrKind::Unauthorized`]; a server without one ignores
    /// the field.
    Hello { proto: u32, token: Option<String> },
    /// Liveness probe.
    Ping,
    /// Compile one operator for one device with the named method.
    /// `budget` optionally caps the construction's chain count (Gensor
    /// only; ignored by other methods and by cache hits, which return the
    /// banked schedule regardless of budget).
    Compile {
        op: OpSpec,
        gpu: GpuSpec,
        method: String,
        budget: Option<u32>,
    },
    /// Precompile every unique operator of a model-zoo graph.
    Batch {
        model: String,
        batch: u64,
        gpu: GpuSpec,
        method: String,
    },
    /// Install an already-compiled kernel into this daemon's cache — the
    /// fabric's write-through and read-repair path. The kernel is
    /// verified before admission; an illegal schedule is refused with
    /// [`ErrKind::Rejected`] and never banked.
    Put {
        op: OpSpec,
        gpu: GpuSpec,
        method: String,
        // Boxed: a kernel dwarfs every other request, and `Request` is
        // passed around by value in the dispatch loop.
        kernel: Box<WireKernel>,
    },
    /// Freshness probe: is (`op`, `gpu`, `method`) resident in this
    /// daemon's cache? Never compiles; answered inline.
    Probe {
        op: OpSpec,
        gpu: GpuSpec,
        method: String,
    },
    /// Set (or clear, with `trace_id == 0`) the connection's distributed
    /// trace context. The server stamps `trace` / `parent` onto every
    /// subsequent request's `serve.request` span until the context changes,
    /// so one compile fanned out over the fabric shows up as a single
    /// trace id across every daemon it touched. Answered inline with
    /// [`Response::TraceAck`]; one frame per context change, not per
    /// request.
    Trace { trace_id: u64, parent_span: u64 },
    /// Pull the daemon's flight-recorder ring (recent spans, points, and
    /// log lines). Answered inline with [`Response::TraceDumped`]; a
    /// daemon without a recorder installed answers with an empty dump
    /// rather than an error.
    TraceDump,
    /// SWIM-style membership exchange (v7). `from` is the sender's own
    /// endpoint, `incarnation` its current incarnation number, and
    /// `updates` the piggybacked slice of its membership table. Doubles
    /// as the direct liveness probe: answering at all proves the daemon
    /// alive. A daemon without a gossip agent attached answers with an
    /// empty update set — gossip is cleanly absent, never an error.
    Gossip {
        from: String,
        incarnation: u64,
        updates: Vec<WireMember>,
    },
    /// Indirect probe (v7): "dial `target` and ping it for me". Used when
    /// a direct probe fails, so one flaky link does not condemn a healthy
    /// peer. Answered inline with [`Response::PingReqDone`].
    PingReq { target: String },
    /// The daemon's current membership table (v7); empty when no gossip
    /// agent is attached.
    Members,
    /// The daemon's cache fingerprint digest (v7): one root plus one
    /// XOR-fold per shard, so a repair pass can locate divergence without
    /// shipping key sets. Answered inline.
    CacheDigest,
    /// All cache keys resident in one digest shard (v7). Used by repair
    /// after a shard digest mismatch to diff key sets.
    CacheKeys { shard: u32 },
    /// Fetch full entries for `keys` (v7) — the streaming half of
    /// anti-entropy repair. Keys absent from the cache are skipped, not
    /// errors. The server caps one reply at [`MAX_PULL_KEYS`] entries;
    /// clients chunk.
    CachePull { keys: Vec<schedcache::CacheKey> },
    /// Install raw repaired entries (v7) — the push half of
    /// operator-driven repair (`gensor cluster repair`). Every entry is
    /// re-verified under the remote-peer provenance policy before
    /// banking; rejected entries are counted, never installed.
    CachePush { entries: Vec<WireEntry> },
    /// Server counters + latency percentiles + cache statistics.
    Stats,
    /// The server's metric registry in Prometheus text exposition format.
    Metrics,
    /// The learned benefit model distributed with the server's schedule
    /// cache (the `<cache>.model.json` sidecar), if one is loaded.
    FetchModel,
    /// Graceful drain: finish in-flight work, flush the store, exit.
    Shutdown,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted; the server's protocol version.
    Hello { proto: u32 },
    /// Reply to [`Request::Ping`].
    Pong,
    /// A compiled schedule and how the shared cache answered.
    Compiled {
        outcome: WireOutcome,
        kernel: WireKernel,
    },
    /// Reply to [`Request::Batch`]. `failed` counts jobs whose compile
    /// panicked and was failed individually; the rest of the batch is
    /// unaffected.
    BatchDone {
        requested: u64,
        built: u64,
        hits: u64,
        coalesced: u64,
        failed: u64,
        wall_s: f64,
    },
    /// Reply to [`Request::Put`]. `installed` is `true` when the kernel
    /// was admitted fresh, `false` when the key was already resident (the
    /// replica was up to date; nothing was replaced).
    PutDone { installed: bool },
    /// Reply to [`Request::Probe`].
    Probed { cached: bool },
    /// Reply to [`Request::Trace`]: the context is set for this
    /// connection.
    TraceAck,
    /// Reply to [`Request::TraceDump`]: the daemon's flight-recorder ring
    /// in wire form, oldest event first. `tag` is the recorder's tag (the
    /// daemon's listen port by convention); empty when no recorder is
    /// installed, alongside an empty `events`.
    TraceDumped { tag: String, events: Vec<WireEvent> },
    /// Reply to [`Request::Gossip`]: the responder's piggybacked
    /// membership updates (empty when no gossip agent is attached).
    GossipAck { updates: Vec<WireMember> },
    /// Reply to [`Request::PingReq`]: whether the indirect target
    /// answered a ping within the probe timeout.
    PingReqDone { ok: bool },
    /// Reply to [`Request::Members`]: the daemon's membership table,
    /// empty when no gossip agent is attached.
    Members { members: Vec<WireMember> },
    /// Reply to [`Request::CacheDigest`]: `root` is the XOR-fold over
    /// every resident key's hash, `shards` the per-shard folds, `count`
    /// the resident-entry count. Two caches with equal `root` and
    /// `count` hold the same key set (modulo astronomically unlikely
    /// XOR collisions).
    CacheDigest {
        root: u64,
        shards: Vec<u64>,
        count: u64,
    },
    /// Reply to [`Request::CacheKeys`].
    CacheKeys { keys: Vec<schedcache::CacheKey> },
    /// Reply to [`Request::CachePull`].
    CacheEntries { entries: Vec<WireEntry> },
    /// Reply to [`Request::CachePush`].
    CachePushed { installed: u64, rejected: u64 },
    /// Reply to [`Request::Stats`].
    Stats { server: ServeStats },
    /// Reply to [`Request::Metrics`]: Prometheus text exposition, ready
    /// for a scrape endpoint or `gensor metrics --socket`.
    Metrics { text: String },
    /// Reply to [`Request::FetchModel`]: the learned benefit model as its
    /// JSON wire form, or `None` when the server has none loaded. The
    /// server treats the JSON as opaque — the client validates versions
    /// when it deserializes.
    Model { json: Option<String> },
    /// Load shed: the admission gate is full. Back off and retry (or
    /// compile locally); nothing was queued.
    Busy { inflight: u64, max_inflight: u64 },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// A typed failure; the connection stays usable unless the transport
    /// itself broke.
    Error { kind: ErrKind, message: String },
}

/// How the shared cache satisfied a [`Request::Compile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireOutcome {
    /// This request ran the construction.
    Built,
    /// Answered from the resident cache.
    Hit,
    /// Collapsed onto another client's in-flight construction.
    Coalesced,
}

impl From<schedcache::Outcome> for WireOutcome {
    fn from(o: schedcache::Outcome) -> Self {
        match o {
            schedcache::Outcome::Built => WireOutcome::Built,
            schedcache::Outcome::Hit => WireOutcome::Hit,
            schedcache::Outcome::Coalesced => WireOutcome::Coalesced,
        }
    }
}

/// Classified server-side failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrKind {
    /// Client and server [`PROTO_VERSION`]s differ.
    UnsupportedProto,
    /// The server requires a shared token and the `Hello` carried a
    /// missing or wrong one. Terminal for the connection — retrying with
    /// the same credentials cannot succeed, so clients surface it typed
    /// instead of falling back silently.
    Unauthorized,
    /// Frame decoded but violated the protocol (bad first frame, garbage
    /// payload, oversize header).
    Malformed,
    /// No such tuning method registered.
    UnknownMethod,
    /// No such model in the zoo.
    UnknownModel,
    /// The request was admitted but missed its deadline.
    DeadlineExceeded,
    /// The compiled schedule failed static verification and was refused —
    /// never served from the cache, never banked.
    Rejected,
    /// Anything else (worker died, channel closed, …).
    Internal,
}

/// A [`CompiledKernel`] in wire form (field-for-field mirror; kept as a
/// distinct type so the wire format is explicit, not whatever the
/// simulator struct happens to be).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireKernel {
    pub etir: Etir,
    pub report: KernelReport,
    pub wall_time_s: f64,
    pub simulated_tuning_s: f64,
    pub candidates_evaluated: u64,
}

impl From<&CompiledKernel> for WireKernel {
    fn from(k: &CompiledKernel) -> Self {
        WireKernel {
            etir: k.etir.clone(),
            report: k.report.clone(),
            wall_time_s: k.wall_time_s,
            simulated_tuning_s: k.simulated_tuning_s,
            candidates_evaluated: k.candidates_evaluated,
        }
    }
}

impl From<WireKernel> for CompiledKernel {
    fn from(k: WireKernel) -> Self {
        CompiledKernel {
            etir: k.etir,
            report: k.report,
            wall_time_s: k.wall_time_s,
            simulated_tuning_s: k.simulated_tuning_s,
            candidates_evaluated: k.candidates_evaluated,
        }
    }
}

/// One membership-table row in wire form: a peer endpoint, its gossip
/// state (`"alive"` / `"suspect"` / `"dead"` — strings so a future state
/// never breaks old parsers), its incarnation number, and the Unix time
/// of its last state transition. Incarnations implement SWIM's
/// refutation rule: a higher incarnation always wins a merge, and a node
/// seeing itself reported suspect or dead re-announces with a bumped
/// incarnation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMember {
    pub endpoint: String,
    pub state: String,
    pub incarnation: u64,
    pub since_unix_s: u64,
}

/// One repaired cache entry in wire form. Carries the *raw* cache key
/// (fingerprints cannot be reconstructed from specs on the receiving
/// side — the original `GpuSpec` is not recoverable from the kernel), the
/// operator label and method for the persistent store record, and the
/// kernel itself. The receiver re-verifies the kernel under the
/// remote-peer provenance policy before banking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEntry {
    pub key: schedcache::CacheKey,
    pub op_label: String,
    pub method: String,
    pub kernel: WireKernel,
}

/// One flight-recorder event in wire form (the [`Response::TraceDumped`]
/// payload). The in-process [`obs::Event`] uses `&'static str` names and
/// keys from the span taxonomy; on the wire they travel as owned strings
/// and re-enter the static model through [`obs::intern_name`] — the set of
/// distinct names is small and bounded by the taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// Microseconds since the *remote* process's trace epoch. Epochs are
    /// per-process; hop ordering comes from the `trace`/`parent` span
    /// fields, not from comparing timestamps across dumps.
    pub ts_us: u64,
    /// The remote process's dense thread id.
    pub tid: u64,
    /// Phase: `"B"` (span begin), `"E"` (span end), `"i"` (point),
    /// `"log"`.
    pub ph: String,
    /// Span/point name (`"log"` for log lines).
    pub name: String,
    /// Log severity (`"debug"`…`"error"`); empty for non-log events.
    pub level: String,
    /// Log message; empty for non-log events.
    pub message: String,
    /// Structured fields.
    pub fields: Vec<(String, serde::Value)>,
}

fn obs_value_to_wire(v: &obs::Value) -> serde::Value {
    match v {
        obs::Value::U64(n) => serde::Value::U64(*n),
        obs::Value::I64(n) => serde::Value::I64(*n),
        obs::Value::F64(f) => serde::Value::F64(*f),
        obs::Value::Bool(b) => serde::Value::Bool(*b),
        obs::Value::Str(s) => serde::Value::Str(s.clone()),
    }
}

fn wire_value_to_obs(v: &serde::Value) -> obs::Value {
    match v {
        serde::Value::U64(n) => obs::Value::U64(*n),
        serde::Value::I64(n) => obs::Value::I64(*n),
        serde::Value::F64(f) => obs::Value::F64(*f),
        serde::Value::Bool(b) => obs::Value::Bool(*b),
        serde::Value::Str(s) => obs::Value::Str(s.clone()),
        // Null/Array/Object never leave obs, but a forged frame could
        // carry them; render rather than reject.
        other => obs::Value::Str(format!("{other:?}")),
    }
}

impl From<&obs::Event> for WireEvent {
    fn from(ev: &obs::Event) -> Self {
        let (ph, name, level, message) = match &ev.kind {
            obs::EventKind::Begin { name } => ("B", *name, "", String::new()),
            obs::EventKind::End { name } => ("E", *name, "", String::new()),
            obs::EventKind::Point { name } => ("i", *name, "", String::new()),
            obs::EventKind::Log { level, message } => {
                ("log", "log", level.as_str(), message.clone())
            }
        };
        WireEvent {
            ts_us: ev.ts_us,
            tid: ev.tid,
            ph: ph.to_string(),
            name: name.to_string(),
            level: level.to_string(),
            message,
            fields: ev
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), obs_value_to_wire(v)))
                .collect(),
        }
    }
}

impl WireEvent {
    /// Rebuild the in-process event. Unknown phases decay to points and
    /// unknown levels to `Info` — a dump viewer wants totality, not
    /// rejection.
    pub fn to_event(&self) -> obs::Event {
        let name = obs::intern_name(&self.name);
        let kind = match self.ph.as_str() {
            "B" => obs::EventKind::Begin { name },
            "E" => obs::EventKind::End { name },
            "log" => obs::EventKind::Log {
                level: match self.level.as_str() {
                    "debug" => obs::Level::Debug,
                    "warn" => obs::Level::Warn,
                    "error" => obs::Level::Error,
                    _ => obs::Level::Info,
                },
                message: self.message.clone(),
            },
            _ => obs::EventKind::Point { name },
        };
        obs::Event {
            ts_us: self.ts_us,
            tid: self.tid,
            kind,
            fields: self
                .fields
                .iter()
                .map(|(k, v)| (obs::intern_name(k), wire_value_to_obs(v)))
                .collect(),
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Peer closed cleanly between frames (EOF at a frame boundary).
    Closed,
    /// The read timed out while *idle* (no header byte consumed). The
    /// server uses this to poll its shutdown flag between frames.
    IdleTimeout,
    /// The connection died (or timed out) mid-frame.
    Truncated,
    /// The header announced more than [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The payload was not valid JSON for the expected frame type.
    Malformed(String),
    /// Any other transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::IdleTimeout => write!(f, "idle read timeout"),
            FrameError::Truncated => write!(f, "connection died mid-frame"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Write one frame: length prefix + JSON payload, flushed.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Malformed(e.to_string()))?;
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(bytes.len()));
    }
    let header = (bytes.len() as u32).to_be_bytes();
    w.write_all(&header).map_err(FrameError::Io)?;
    w.write_all(bytes).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Read one frame of type `T`. Distinguishes a clean close (EOF at a
/// frame boundary) from truncation mid-frame, and an idle read timeout
/// from one that strands a partial frame.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, FrameError> {
    let mut header = [0u8; 4];
    read_fully(r, &mut header, true)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    read_fully(r, &mut payload, false)?;
    let text = std::str::from_utf8(&payload).map_err(|e| FrameError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// Fill `buf` completely. `at_boundary` selects the failure flavour for a
/// zero-byte first read (clean close vs truncation) and for a timeout
/// before any byte arrived (idle vs mid-frame).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Truncated
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return Err(if at_boundary && got == 0 {
                    FrameError::IdleTimeout
                } else {
                    FrameError::Truncated
                })
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_compile() -> Request {
        Request::Compile {
            op: OpSpec::gemm(1024, 512, 512),
            gpu: GpuSpec::rtx4090(),
            method: "gensor".into(),
            budget: Some(4),
        }
    }

    #[test]
    fn request_round_trips_through_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &gemm_compile()).unwrap();
        let back: Request = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, gemm_compile());
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let frames = vec![
            Request::Hello {
                proto: PROTO_VERSION,
                token: Some("fabric-secret".into()),
            },
            Request::Ping,
            Request::Stats,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = buf.as_slice();
        for f in &frames {
            let back: Request = read_frame(&mut r).unwrap();
            assert_eq!(&back, f);
        }
        assert!(matches!(
            read_frame::<_, Request>(&mut r),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversize_header_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"whatever");
        match read_frame::<_, Request>(&mut buf.as_slice()) {
            Err(FrameError::TooLarge(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_payload_is_malformed_not_fatal() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u32.to_be_bytes());
        buf.extend_from_slice(b"not{json");
        assert!(matches!(
            read_frame::<_, Request>(&mut buf.as_slice()),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn truncation_mid_frame_is_distinguished_from_clean_close() {
        let mut full = Vec::new();
        write_frame(&mut full, &gemm_compile()).unwrap();
        // Cut inside the payload.
        let cut = &full[..full.len() - 3];
        assert!(matches!(
            read_frame::<_, Request>(&mut &cut[..]),
            Err(FrameError::Truncated)
        ));
        // Cut inside the header.
        assert!(matches!(
            read_frame::<_, Request>(&mut &full[..2]),
            Err(FrameError::Truncated)
        ));
        // Empty input is a clean close.
        assert!(matches!(
            read_frame::<_, Request>(&mut &full[..0]),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn responses_round_trip_including_errors() {
        let k = {
            let spec = GpuSpec::rtx4090();
            let e = Etir::initial(OpSpec::gemm(64, 64, 64), &spec);
            let report = simgpu::simulate(&e, &spec).unwrap();
            WireKernel {
                etir: e,
                report,
                wall_time_s: 0.25,
                simulated_tuning_s: 0.0,
                candidates_evaluated: 42,
            }
        };
        let frames = vec![
            Response::Hello {
                proto: PROTO_VERSION,
            },
            Response::Pong,
            Response::Compiled {
                outcome: WireOutcome::Coalesced,
                kernel: k,
            },
            Response::Busy {
                inflight: 8,
                max_inflight: 8,
            },
            Response::ShuttingDown,
            Response::Error {
                kind: ErrKind::UnknownMethod,
                message: "no method 'frobnicate'".into(),
            },
            Response::Error {
                kind: ErrKind::Unauthorized,
                message: "bad token".into(),
            },
        ];
        for f in frames {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Response = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn fabric_frames_round_trip() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(128, 128, 128);
        let e = Etir::initial(op.clone(), &spec);
        let report = simgpu::simulate(&e, &spec).unwrap();
        let put = Request::Put {
            op: op.clone(),
            gpu: spec.clone(),
            method: "gensor".into(),
            kernel: Box::new(WireKernel {
                etir: e,
                report,
                wall_time_s: 0.5,
                simulated_tuning_s: 0.0,
                candidates_evaluated: 7,
            }),
        };
        let probe = Request::Probe {
            op,
            gpu: spec,
            method: "gensor".into(),
        };
        for f in [put, probe] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Request = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
        for f in [
            Response::PutDone { installed: true },
            Response::Probed { cached: false },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Response = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn trace_frames_round_trip() {
        for f in [
            Request::Trace {
                trace_id: 0xdead_beef_cafe_f00d,
                parent_span: 42,
            },
            Request::Trace {
                trace_id: 0,
                parent_span: 0,
            },
            Request::TraceDump,
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Request = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
        let dumped = Response::TraceDumped {
            tag: "7601".into(),
            events: vec![
                WireEvent {
                    ts_us: 10,
                    tid: 2,
                    ph: "B".into(),
                    name: "serve.request".into(),
                    level: String::new(),
                    message: String::new(),
                    fields: vec![
                        ("trace".into(), serde::Value::U64(7)),
                        ("op".into(), serde::Value::Str("gemm".into())),
                    ],
                },
                WireEvent {
                    ts_us: 11,
                    tid: 2,
                    ph: "log".into(),
                    name: "log".into(),
                    level: "warn".into(),
                    message: "uh oh".into(),
                    fields: Vec::new(),
                },
            ],
        };
        for f in [dumped, Response::TraceAck] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Response = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn wire_events_round_trip_through_the_obs_model() {
        let events = vec![
            obs::Event {
                ts_us: 5,
                tid: 1,
                kind: obs::EventKind::Begin { name: "tune" },
                fields: vec![
                    ("span", obs::Value::U64(9)),
                    ("op", obs::Value::Str("gemm".into())),
                    ("ok", obs::Value::Bool(true)),
                    ("gain", obs::Value::F64(0.5)),
                    ("delta", obs::Value::I64(-3)),
                ],
            },
            obs::Event {
                ts_us: 6,
                tid: 1,
                kind: obs::EventKind::End { name: "tune" },
                fields: vec![("span", obs::Value::U64(9))],
            },
            obs::Event {
                ts_us: 7,
                tid: 2,
                kind: obs::EventKind::Point { name: "walk.step" },
                fields: Vec::new(),
            },
            obs::Event {
                ts_us: 8,
                tid: 2,
                kind: obs::EventKind::Log {
                    level: obs::Level::Error,
                    message: "boom".into(),
                },
                fields: Vec::new(),
            },
        ];
        for ev in &events {
            let wire = WireEvent::from(ev);
            let mut buf = Vec::new();
            write_frame(&mut buf, &wire).unwrap();
            let back: WireEvent = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back.to_event(), *ev);
        }
    }

    #[test]
    fn selfheal_frames_round_trip() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(96, 96, 96);
        let key = schedcache::CacheKey::new(&op, &spec, "gensor");
        let e = Etir::initial(op, &spec);
        let report = simgpu::simulate(&e, &spec).unwrap();
        let entry = WireEntry {
            key,
            op_label: e.op.label(),
            method: "Gensor".into(),
            kernel: WireKernel {
                etir: e,
                report,
                wall_time_s: 0.1,
                simulated_tuning_s: 0.0,
                candidates_evaluated: 3,
            },
        };
        let member = WireMember {
            endpoint: "tcp://127.0.0.1:7601".into(),
            state: "suspect".into(),
            incarnation: 4,
            since_unix_s: 1_754_600_000,
        };
        let requests = vec![
            Request::Gossip {
                from: "tcp://127.0.0.1:7602".into(),
                incarnation: 9,
                updates: vec![member.clone()],
            },
            Request::PingReq {
                target: "tcp://127.0.0.1:7603".into(),
            },
            Request::Members,
            Request::CacheDigest,
            Request::CacheKeys { shard: 11 },
            Request::CachePull { keys: vec![key] },
            Request::CachePush {
                entries: vec![entry.clone()],
            },
        ];
        for f in requests {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Request = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
        let responses = vec![
            Response::GossipAck {
                updates: vec![member.clone()],
            },
            Response::PingReqDone { ok: true },
            Response::Members {
                members: vec![member],
            },
            Response::CacheDigest {
                root: 0xfeed_f00d,
                shards: vec![1, 2, 3],
                count: 3,
            },
            Response::CacheKeys { keys: vec![key] },
            Response::CacheEntries {
                entries: vec![entry],
            },
            Response::CachePushed {
                installed: 2,
                rejected: 1,
            },
        ];
        for f in responses {
            let mut buf = Vec::new();
            write_frame(&mut buf, &f).unwrap();
            let back: Response = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn v6_frames_still_parse_on_a_v7_build() {
        // Literal v6 wire JSON (as a v6 client would send it). v7 added
        // frames without touching these layouts, so they must keep
        // parsing byte-for-byte — an old peer in a new cluster keeps
        // compiling, with gossip and repair simply absent.
        let hello: Request =
            serde_json::from_str(r#"{"Hello":{"proto":6,"token":"fabric-secret"}}"#).unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                proto: 6,
                token: Some("fabric-secret".into()),
            }
        );
        let trace: Request =
            serde_json::from_str(r#"{"Trace":{"trace_id":7,"parent_span":3}}"#).unwrap();
        assert_eq!(
            trace,
            Request::Trace {
                trace_id: 7,
                parent_span: 3,
            }
        );
        let put_reply: Response =
            serde_json::from_str(r#"{"PutDone":{"installed":false}}"#).unwrap();
        assert_eq!(put_reply, Response::PutDone { installed: false });
        const { assert!(MIN_PROTO_VERSION <= 6 && PROTO_VERSION >= 7) };
    }

    #[test]
    fn v5_frames_still_parse_on_a_v6_build() {
        // Literal v5 wire JSON (as a v5 client would send it). v6 added
        // frames without touching these layouts, so they must keep
        // parsing byte-for-byte.
        let hello: Request =
            serde_json::from_str(r#"{"Hello":{"proto":5,"token":"fabric-secret"}}"#).unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                proto: 5,
                token: Some("fabric-secret".into()),
            }
        );
        let ping: Request = serde_json::from_str(r#""Ping""#).unwrap();
        assert_eq!(ping, Request::Ping);
        let probe_reply: Response = serde_json::from_str(r#"{"Probed":{"cached":true}}"#).unwrap();
        assert_eq!(probe_reply, Response::Probed { cached: true });
        const { assert!(MIN_PROTO_VERSION <= 5 && PROTO_VERSION >= 6) };
    }

    #[test]
    fn hello_without_token_round_trips() {
        let hello = Request::Hello {
            proto: PROTO_VERSION,
            token: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &hello).unwrap();
        let back: Request = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(back, hello);
    }
}
