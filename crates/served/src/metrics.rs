//! Server-side observability: request counters and a fixed-bucket
//! request-latency histogram.
//!
//! The histogram trades exactness for a wait-free hot path: recording a
//! latency is one atomic increment into a log-spaced bucket, and
//! percentiles are answered from the bucket counts (reported as the upper
//! bound of the bucket containing the quantile — an over-estimate by at
//! most one bucket width, which is what you want from an SLO number).

use crate::proto::WireOutcome;
use schedcache::StatsSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bucket upper bounds, microseconds (log-spaced ~2.5×); an implicit
/// overflow bucket catches everything slower than 10 s.
const BUCKET_BOUNDS_US: [u64; 17] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Wait-free fixed-bucket latency histogram.
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1];
    /// 0 when nothing was recorded. The overflow bucket reports 2× the
    /// last bound.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.total.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(2 * BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
        2 * BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Live counters for one server instance.
#[derive(Default)]
pub struct Metrics {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub compiles: AtomicU64,
    pub batches: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub coalesced: AtomicU64,
    pub shed: AtomicU64,
    pub deadline_expired: AtomicU64,
    pub proto_errors: AtomicU64,
    pub worker_panics: AtomicU64,
    pub cancelled: AtomicU64,
    pub auth_failures: AtomicU64,
    pub puts: AtomicU64,
    pub latency: Histogram,
    pub queue: Histogram,
    pub service: Histogram,
}

impl Metrics {
    /// Count a compile answered with `outcome` after waiting `queue_us`
    /// microseconds in the admission queue and spending `service_us`
    /// microseconds compiling. Total request latency is the sum; the two
    /// components get their own histograms so `serve-stats` can tell an
    /// overloaded daemon (queue grows) from a slow construction (service
    /// grows).
    pub fn record_compile(&self, outcome: WireOutcome, queue_us: u64, service_us: u64) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        match outcome {
            WireOutcome::Built => &self.misses,
            WireOutcome::Hit => &self.hits,
            WireOutcome::Coalesced => &self.coalesced,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency.record_us(queue_us + service_us);
        self.queue.record_us(queue_us);
        self.service.record_us(service_us);
        obs::histogram_record_us!(
            "gensor_serve_queue_us",
            "Time compile requests waited for a worker",
            queue_us
        );
        obs::histogram_record_us!(
            "gensor_serve_service_us",
            "Time workers spent answering compile requests",
            service_us
        );
    }

    /// Point-in-time wire-format snapshot, merged with the shared cache's
    /// own counters and the daemon's configured peer list.
    pub fn snapshot(&self, started: Instant, cache: StatsSnapshot, peers: &[String]) -> ServeStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            uptime_s: started.elapsed().as_secs_f64(),
            connections: load(&self.connections),
            requests: load(&self.requests),
            compiles: load(&self.compiles),
            batches: load(&self.batches),
            hits: load(&self.hits),
            misses: load(&self.misses),
            coalesced: load(&self.coalesced),
            shed: load(&self.shed),
            deadline_expired: load(&self.deadline_expired),
            proto_errors: load(&self.proto_errors),
            worker_panics: load(&self.worker_panics),
            cancelled: load(&self.cancelled),
            auth_failures: load(&self.auth_failures),
            puts: load(&self.puts),
            peers: peers.to_vec(),
            latency_p50_us: self.latency.quantile_us(0.50),
            latency_p99_us: self.latency.quantile_us(0.99),
            queue_p50_us: self.queue.quantile_us(0.50),
            queue_p99_us: self.queue.quantile_us(0.99),
            service_p50_us: self.service.quantile_us(0.50),
            service_p99_us: self.service.quantile_us(0.99),
            cache,
        }
    }
}

/// Serializable server statistics (the `Stats` frame's payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Connections accepted.
    pub connections: u64,
    /// Frames dispatched (any kind).
    pub requests: u64,
    /// Compile requests answered (admitted, not shed).
    pub compiles: u64,
    /// Batch precompile requests answered.
    pub batches: u64,
    /// Compiles answered from the resident cache.
    pub hits: u64,
    /// Compiles that ran a construction.
    pub misses: u64,
    /// Compiles collapsed onto another client's in-flight construction.
    pub coalesced: u64,
    /// Requests refused with `Busy` by the admission gate.
    pub shed: u64,
    /// Admitted requests that missed their deadline.
    pub deadline_expired: u64,
    /// Malformed/oversize/truncated frames seen.
    pub proto_errors: u64,
    /// Worker panics caught and answered as typed `Internal` errors
    /// (the worker itself survives).
    pub worker_panics: u64,
    /// Queued jobs dropped un-run because their client disconnected.
    pub cancelled: u64,
    /// Connections refused for a missing or wrong shared token.
    pub auth_failures: u64,
    /// Fabric `Put` frames answered (write-through / read-repair
    /// installs, whether admitted fresh or already resident).
    pub puts: u64,
    /// The daemon's configured fabric peers (`serve --peers`), verbatim.
    pub peers: Vec<String>,
    /// Median request latency, microseconds (bucket upper bound).
    pub latency_p50_us: u64,
    /// 99th-percentile request latency, microseconds (bucket upper bound).
    pub latency_p99_us: u64,
    /// Median time a compile waited for a worker, microseconds.
    pub queue_p50_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Median time a worker spent answering a compile, microseconds.
    pub service_p50_us: u64,
    /// 99th-percentile service time, microseconds.
    pub service_p99_us: u64,
    /// The shared schedule cache's own counters.
    pub cache: StatsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_land_in_the_right_bucket() {
        let h = Histogram::default();
        for _ in 0..98 {
            h.record_us(80); // ≤ 100 bucket
        }
        h.record_us(40_000); // ≤ 50 ms bucket
        h.record_us(20_000_000); // overflow
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.98), 100);
        assert_eq!(h.quantile_us(0.99), 50_000);
        assert_eq!(
            h.quantile_us(1.0),
            20_000_000,
            "overflow reports 2× last bound"
        );
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn compile_outcomes_split_into_the_right_counters() {
        let m = Metrics::default();
        m.record_compile(WireOutcome::Built, 100, 800);
        m.record_compile(WireOutcome::Hit, 10, 20);
        m.record_compile(WireOutcome::Hit, 10, 30);
        m.record_compile(WireOutcome::Coalesced, 100, 600);
        let s = m.snapshot(
            Instant::now(),
            schedcache::ScheduleCache::in_memory().stats(),
            &[],
        );
        assert_eq!((s.compiles, s.misses, s.hits, s.coalesced), (4, 1, 2, 1));
        assert_eq!(
            s.latency_p50_us, 50,
            "two 30–40 µs hits pull the median down"
        );
        assert!(s.latency_p99_us >= 500);
    }

    #[test]
    fn queue_and_service_time_are_tracked_separately() {
        let m = Metrics::default();
        // A daemon whose queue is the bottleneck: long waits, fast service.
        m.record_compile(WireOutcome::Hit, 40_000, 60);
        m.record_compile(WireOutcome::Hit, 45_000, 70);
        m.record_compile(WireOutcome::Hit, 48_000, 90);
        let s = m.snapshot(
            Instant::now(),
            schedcache::ScheduleCache::in_memory().stats(),
            &[],
        );
        assert_eq!(s.queue_p50_us, 50_000, "waits land in the ≤50 ms bucket");
        assert_eq!(s.service_p50_us, 100, "service lands in the ≤100 µs bucket");
        // Total latency reflects the sum, not either component alone.
        assert!(s.latency_p50_us >= s.service_p50_us);
    }
}
