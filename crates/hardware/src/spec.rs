//! Architecture description types.
//!
//! A [`GpuSpec`] models a CUDA-class GPU at the granularity a construction
//! compiler needs: the memory hierarchy as an ordered list of [`MemLevel`]s
//! (DRAM → L2 → shared memory → registers), peak FP32 throughput, and the
//! occupancy limits that bound how many thread blocks an SM can host.

use serde::{Deserialize, Serialize};

/// The role a memory level plays in scheduling.
///
/// Only [`LevelKind::Shared`] and [`LevelKind::Register`] are *schedulable*:
/// a tensor program explicitly stages tiles into them. DRAM is the source of
/// truth and the L2 cache is hardware-managed, but both still participate in
/// the caching-benefit formula (paper Eq. 2) and in the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LevelKind {
    /// Off-chip device memory (GDDR / LPDDR / HBM).
    Dram,
    /// On-chip, hardware-managed last-level cache.
    L2,
    /// Per-SM software-managed scratchpad ("shared memory").
    Shared,
    /// Per-thread register file.
    Register,
}

impl LevelKind {
    /// Whether a schedule explicitly allocates tiles at this level.
    pub fn is_schedulable(self) -> bool {
        matches!(self, LevelKind::Shared | LevelKind::Register)
    }
}

/// One level of the memory hierarchy.
///
/// Bandwidth is *aggregate* (whole chip) in bytes per microsecond, which is
/// numerically equal to MB/s ÷ 1 and convenient because kernel times in this
/// stack are kept in microseconds. Latency is in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemLevel {
    /// Role of the level (DRAM / L2 / shared / registers).
    pub kind: LevelKind,
    /// Human-readable name, e.g. `"GDDR6X"` or `"SMEM"`.
    pub name: String,
    /// Capacity in bytes. For [`LevelKind::Shared`] this is the per-SM
    /// capacity; for [`LevelKind::Register`] the per-thread capacity in
    /// bytes (registers × 4); for DRAM/L2 the whole-device capacity.
    pub capacity_bytes: u64,
    /// Access latency in nanoseconds.
    pub latency_ns: f64,
    /// Aggregate bandwidth in bytes per microsecond (== MB/ms == GB/s × 1000).
    pub bandwidth_bytes_per_us: f64,
    /// Number of banks (0 when banking is not modelled at this level).
    pub banks: u32,
    /// Width of one bank in bytes (4 on every NVIDIA generation we model).
    pub bank_width_bytes: u32,
}

impl MemLevel {
    /// Bandwidth in GB/s for display purposes.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_bytes_per_us / 1000.0
    }

    /// Time in microseconds to move `bytes` through this level, including
    /// one latency charge. This is the `L + S/B` term of the paper's
    /// caching-benefit formula (Eq. 2).
    pub fn transfer_time_us(&self, bytes: f64) -> f64 {
        self.latency_ns / 1000.0 + bytes / self.bandwidth_bytes_per_us
    }
}

/// A complete GPU architecture description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name of the device.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Peak FP32 throughput in GFLOPS (whole device).
    pub peak_fp32_gflops: f64,
    /// Threads per warp (32 on all NVIDIA parts).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads in a single block.
    pub max_threads_per_block: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum 32-bit registers a single thread may use.
    pub max_regs_per_thread: u32,
    /// Shared memory usable by one block, in bytes (≤ per-SM capacity).
    pub max_smem_per_block: u64,
    /// Fixed cost of launching one kernel, in microseconds.
    pub kernel_launch_overhead_us: f64,
    /// Memory hierarchy ordered from farthest (DRAM, index 0) to closest
    /// (registers, last index).
    pub levels: Vec<MemLevel>,
}

/// Why a [`GpuSpec`] is not internally consistent. Surfaced as a typed
/// value so spec problems become diagnostics, not crashes.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The hierarchy defines no memory levels at all.
    NoLevels { spec: String },
    /// A required level kind is absent from the hierarchy.
    MissingLevel { spec: String, kind: LevelKind },
    /// Bandwidth decreases moving toward compute.
    InvertedBandwidth { outer: String, inner: String },
    /// Latency increases moving toward compute.
    InvertedLatency { outer: String, inner: String },
    /// A single block may allocate more shared memory than one SM has.
    SmemBlockExceedsSm { block: u64, sm: u64 },
    /// A single block may hold more threads than one SM hosts.
    ThreadsBlockExceedsSm { block: u32, sm: u32 },
    /// Zero SMs or non-positive peak throughput.
    NonPositiveCompute { spec: String },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoLevels { spec } => write!(f, "GpuSpec {spec} has no memory levels"),
            SpecError::MissingLevel { spec, kind } => {
                write!(f, "GpuSpec {spec} lacks level {kind:?}")
            }
            SpecError::InvertedBandwidth { outer, inner } => {
                write!(
                    f,
                    "bandwidth must increase toward compute: {inner} < {outer}"
                )
            }
            SpecError::InvertedLatency { outer, inner } => {
                write!(f, "latency must decrease toward compute: {inner} > {outer}")
            }
            SpecError::SmemBlockExceedsSm { block, sm } => write!(
                f,
                "max_smem_per_block ({block} B) exceeds per-SM capacity ({sm} B)"
            ),
            SpecError::ThreadsBlockExceedsSm { block, sm } => write!(
                f,
                "max_threads_per_block ({block}) exceeds per-SM thread limit ({sm})"
            ),
            SpecError::NonPositiveCompute { spec } => {
                write!(f, "GpuSpec {spec} has non-positive compute capability")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl GpuSpec {
    /// Index of the first level with the given kind, if present.
    pub fn level_index(&self, kind: LevelKind) -> Option<usize> {
        self.levels.iter().position(|l| l.kind == kind)
    }

    /// The level with the given kind, or a typed error when the spec
    /// lacks it (every preset defines all four kinds).
    pub fn try_level(&self, kind: LevelKind) -> Result<&MemLevel, SpecError> {
        self.levels
            .iter()
            .find(|l| l.kind == kind)
            .ok_or_else(|| SpecError::MissingLevel {
                spec: self.name.clone(),
                kind,
            })
    }

    /// The level with the given kind. Panics if the spec lacks it; use
    /// [`GpuSpec::try_level`] where a missing level should be a
    /// diagnostic rather than a crash.
    pub fn level(&self, kind: LevelKind) -> &MemLevel {
        self.try_level(kind).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Indices of the schedulable levels, ordered far → near
    /// (shared memory first, registers last).
    pub fn schedulable_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind.is_schedulable())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of schedulable cache layers `L` in the paper's
    /// `D = [T_L, …, T_1, T_0]` notation (2 on every NVIDIA preset:
    /// shared memory and registers).
    pub fn num_schedulable_levels(&self) -> usize {
        self.schedulable_levels().len()
    }

    /// Peak FP32 throughput of a *single* SM in GFLOPS.
    pub fn peak_gflops_per_sm(&self) -> f64 {
        self.peak_fp32_gflops / self.num_sms as f64
    }

    /// Shared-memory capacity per SM in bytes.
    pub fn smem_per_sm(&self) -> u64 {
        self.level(LevelKind::Shared).capacity_bytes
    }

    /// Basic internal-consistency checks; every preset must pass.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.levels.is_empty() {
            return Err(SpecError::NoLevels {
                spec: self.name.clone(),
            });
        }
        for kind in [
            LevelKind::Dram,
            LevelKind::L2,
            LevelKind::Shared,
            LevelKind::Register,
        ] {
            self.try_level(kind)?;
        }
        // Levels must be ordered far → near: bandwidth must not decrease.
        for w in self.levels.windows(2) {
            if w[1].bandwidth_bytes_per_us < w[0].bandwidth_bytes_per_us {
                return Err(SpecError::InvertedBandwidth {
                    outer: w[0].name.clone(),
                    inner: w[1].name.clone(),
                });
            }
            if w[1].latency_ns > w[0].latency_ns {
                return Err(SpecError::InvertedLatency {
                    outer: w[0].name.clone(),
                    inner: w[1].name.clone(),
                });
            }
        }
        if self.max_smem_per_block > self.smem_per_sm() {
            return Err(SpecError::SmemBlockExceedsSm {
                block: self.max_smem_per_block,
                sm: self.smem_per_sm(),
            });
        }
        if self.max_threads_per_block > self.max_threads_per_sm {
            return Err(SpecError::ThreadsBlockExceedsSm {
                block: self.max_threads_per_block,
                sm: self.max_threads_per_sm,
            });
        }
        if self.peak_fp32_gflops <= 0.0 || self.num_sms == 0 {
            return Err(SpecError::NonPositiveCompute {
                spec: self.name.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_level(kind: LevelKind, lat: f64, bw: f64) -> MemLevel {
        MemLevel {
            kind,
            name: format!("{kind:?}"),
            capacity_bytes: 1 << 20,
            latency_ns: lat,
            bandwidth_bytes_per_us: bw,
            banks: 32,
            bank_width_bytes: 4,
        }
    }

    fn toy_spec() -> GpuSpec {
        GpuSpec {
            name: "toy".into(),
            num_sms: 4,
            clock_ghz: 1.0,
            peak_fp32_gflops: 1000.0,
            warp_size: 32,
            max_threads_per_sm: 1024,
            max_threads_per_block: 512,
            max_blocks_per_sm: 16,
            regs_per_sm: 65536,
            max_regs_per_thread: 255,
            max_smem_per_block: 1 << 19,
            kernel_launch_overhead_us: 3.0,
            levels: vec![
                toy_level(LevelKind::Dram, 400.0, 1_000.0),
                toy_level(LevelKind::L2, 200.0, 4_000.0),
                toy_level(LevelKind::Shared, 25.0, 16_000.0),
                toy_level(LevelKind::Register, 1.0, 64_000.0),
            ],
        }
    }

    #[test]
    fn toy_spec_validates() {
        toy_spec().validate().unwrap();
    }

    #[test]
    fn schedulable_levels_are_shared_then_register() {
        let s = toy_spec();
        let idx = s.schedulable_levels();
        assert_eq!(idx.len(), 2);
        assert_eq!(s.levels[idx[0]].kind, LevelKind::Shared);
        assert_eq!(s.levels[idx[1]].kind, LevelKind::Register);
        assert_eq!(s.num_schedulable_levels(), 2);
    }

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let l = toy_level(LevelKind::Dram, 1000.0, 2000.0);
        // 1 us latency + 4000 bytes / 2000 B/us = 1 + 2 = 3 us.
        let t = l.transfer_time_us(4000.0);
        assert!((t - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_inverted_bandwidth() {
        let mut s = toy_spec();
        s.levels[2].bandwidth_bytes_per_us = 10.0; // SMEM slower than L2
        assert!(matches!(
            s.validate(),
            Err(SpecError::InvertedBandwidth { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_level() {
        let mut s = toy_spec();
        s.levels.remove(1);
        assert_eq!(
            s.validate(),
            Err(SpecError::MissingLevel {
                spec: "toy".into(),
                kind: LevelKind::L2
            })
        );
    }

    #[test]
    fn validate_rejects_oversized_block_smem() {
        let mut s = toy_spec();
        s.max_smem_per_block = s.smem_per_sm() + 1;
        assert!(matches!(
            s.validate(),
            Err(SpecError::SmemBlockExceedsSm { .. })
        ));
    }

    #[test]
    fn try_level_reports_missing_kind_as_typed_error() {
        let mut s = toy_spec();
        s.levels.remove(1);
        assert!(s.try_level(LevelKind::Shared).is_ok());
        assert_eq!(
            s.try_level(LevelKind::L2),
            Err(SpecError::MissingLevel {
                spec: "toy".into(),
                kind: LevelKind::L2
            })
        );
    }

    #[test]
    fn level_lookup_by_kind() {
        let s = toy_spec();
        assert_eq!(s.level(LevelKind::L2).kind, LevelKind::L2);
        assert_eq!(s.level_index(LevelKind::Register), Some(3));
    }

    #[test]
    fn per_sm_peak_is_total_over_sms() {
        let s = toy_spec();
        assert!((s.peak_gflops_per_sm() - 250.0).abs() < 1e-9);
    }
}
