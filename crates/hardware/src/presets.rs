//! Device presets for the paper's evaluation platforms.
//!
//! Numbers come from public datasheets / whitepapers. Latencies are the
//! usual microbenchmark ballparks (Jia et al.-style dissections); the stack
//! only depends on their *ordering and ratios*, not the exact cycle counts.

use crate::spec::{GpuSpec, LevelKind, MemLevel};

impl GpuSpec {
    /// NVIDIA GeForce RTX 4090 (AD102) — the paper's cloud-server GPU.
    ///
    /// 128 SMs @ ~2.52 GHz boost, 82.6 TFLOPS FP32 peak, 24 GB GDDR6X at
    /// ~1008 GB/s, 72 MB L2, 128 KB shared memory per SM (100 KB usable by
    /// one block on Ada).
    pub fn rtx4090() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA RTX 4090".into(),
            num_sms: 128,
            clock_ghz: 2.52,
            peak_fp32_gflops: 82_580.0,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 24,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            max_smem_per_block: 100 * 1024,
            kernel_launch_overhead_us: 3.0,
            levels: vec![
                MemLevel {
                    kind: LevelKind::Dram,
                    name: "GDDR6X".into(),
                    capacity_bytes: 24 * (1 << 30),
                    latency_ns: 420.0,
                    bandwidth_bytes_per_us: 1_008_000.0, // 1008 GB/s
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::L2,
                    name: "L2".into(),
                    capacity_bytes: 72 * (1 << 20),
                    latency_ns: 230.0,
                    bandwidth_bytes_per_us: 5_000_000.0, // ~5 TB/s
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::Shared,
                    name: "SMEM".into(),
                    capacity_bytes: 128 * 1024,
                    latency_ns: 25.0,
                    // 128 B/clock/SM × 128 SMs × 2.52 GHz ≈ 41.3 TB/s.
                    bandwidth_bytes_per_us: 41_300_000.0,
                    banks: 32,
                    bank_width_bytes: 4,
                },
                MemLevel {
                    kind: LevelKind::Register,
                    name: "REG".into(),
                    capacity_bytes: 255 * 4, // per-thread
                    latency_ns: 0.4,
                    bandwidth_bytes_per_us: 330_000_000.0,
                    banks: 0,
                    bank_width_bytes: 0,
                },
            ],
        }
    }

    /// NVIDIA Jetson Orin Nano 8 GB — the paper's edge GPU.
    ///
    /// Ampere iGPU with 1024 CUDA cores (8 SMs) at ~625 MHz (15 W mode),
    /// ~1.28 TFLOPS FP32, shared LPDDR5 at 68 GB/s, 2 MB L2, 164 KB
    /// shared-memory carve-out per SM.
    pub fn orin_nano() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA Orin Nano".into(),
            num_sms: 8,
            clock_ghz: 0.625,
            peak_fp32_gflops: 1_280.0,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 16,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            max_smem_per_block: 100 * 1024,
            kernel_launch_overhead_us: 8.0, // slower host interface
            levels: vec![
                MemLevel {
                    kind: LevelKind::Dram,
                    name: "LPDDR5".into(),
                    capacity_bytes: 8 * (1 << 30),
                    latency_ns: 550.0,
                    bandwidth_bytes_per_us: 68_000.0, // 68 GB/s
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::L2,
                    name: "L2".into(),
                    capacity_bytes: 2 * (1 << 20),
                    latency_ns: 260.0,
                    bandwidth_bytes_per_us: 400_000.0, // ~0.4 TB/s
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::Shared,
                    name: "SMEM".into(),
                    capacity_bytes: 164 * 1024,
                    latency_ns: 29.0,
                    // 128 B/clock/SM × 8 SMs × 0.625 GHz ≈ 0.64 TB/s.
                    bandwidth_bytes_per_us: 640_000.0,
                    banks: 32,
                    bank_width_bytes: 4,
                },
                MemLevel {
                    kind: LevelKind::Register,
                    name: "REG".into(),
                    capacity_bytes: 255 * 4,
                    latency_ns: 1.6,
                    bandwidth_bytes_per_us: 5_120_000.0,
                    banks: 0,
                    bank_width_bytes: 0,
                },
            ],
        }
    }

    /// NVIDIA A100-SXM4-40GB — not in the paper; used by tests to check the
    /// stack is not over-fit to the two evaluation devices.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "NVIDIA A100".into(),
            num_sms: 108,
            clock_ghz: 1.41,
            peak_fp32_gflops: 19_500.0,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_blocks_per_sm: 32,
            regs_per_sm: 65_536,
            max_regs_per_thread: 255,
            max_smem_per_block: 163 * 1024,
            kernel_launch_overhead_us: 3.5,
            levels: vec![
                MemLevel {
                    kind: LevelKind::Dram,
                    name: "HBM2e".into(),
                    capacity_bytes: 40 * (1 << 30),
                    latency_ns: 480.0,
                    bandwidth_bytes_per_us: 1_555_000.0,
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::L2,
                    name: "L2".into(),
                    capacity_bytes: 40 * (1 << 20),
                    latency_ns: 200.0,
                    bandwidth_bytes_per_us: 4_500_000.0,
                    banks: 0,
                    bank_width_bytes: 0,
                },
                MemLevel {
                    kind: LevelKind::Shared,
                    name: "SMEM".into(),
                    capacity_bytes: 164 * 1024,
                    latency_ns: 27.0,
                    bandwidth_bytes_per_us: 19_500_000.0,
                    banks: 32,
                    bank_width_bytes: 4,
                },
                MemLevel {
                    kind: LevelKind::Register,
                    name: "REG".into(),
                    capacity_bytes: 255 * 4,
                    latency_ns: 0.7,
                    bandwidth_bytes_per_us: 156_000_000.0,
                    banks: 0,
                    bank_width_bytes: 0,
                },
            ],
        }
    }

    /// All presets, for data-driven tests.
    pub fn all_presets() -> Vec<GpuSpec> {
        vec![GpuSpec::rtx4090(), GpuSpec::orin_nano(), GpuSpec::a100()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        let failures: Vec<String> = GpuSpec::all_presets()
            .iter()
            .filter_map(|spec| {
                spec.validate()
                    .err()
                    .map(|e| format!("{} invalid: {e}", spec.name))
            })
            .collect();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn server_is_faster_than_edge_everywhere() {
        let server = GpuSpec::rtx4090();
        let edge = GpuSpec::orin_nano();
        assert!(server.peak_fp32_gflops > 10.0 * edge.peak_fp32_gflops);
        assert!(
            server.level(LevelKind::Dram).bandwidth_bytes_per_us
                > edge.level(LevelKind::Dram).bandwidth_bytes_per_us
        );
        assert!(server.num_sms > edge.num_sms);
    }

    #[test]
    fn presets_have_two_schedulable_levels() {
        for spec in GpuSpec::all_presets() {
            assert_eq!(spec.num_schedulable_levels(), 2, "{}", spec.name);
        }
    }

    #[test]
    fn smem_banks_modelled() {
        for spec in GpuSpec::all_presets() {
            let smem = spec.level(LevelKind::Shared);
            assert_eq!(smem.banks, 32);
            assert_eq!(smem.bank_width_bytes, 4);
        }
    }

    #[test]
    fn rtx4090_roofline_ridge_is_compute_heavy() {
        // FLOP:byte ridge point of the 4090 should be ~80, i.e. GEMMs need
        // large tiles before they become compute-bound — the regime where
        // scheduling quality matters.
        let s = GpuSpec::rtx4090();
        let ridge = s.peak_fp32_gflops / (s.level(LevelKind::Dram).bandwidth_bytes_per_us / 1000.0);
        assert!(ridge > 50.0 && ridge < 120.0, "ridge = {ridge}");
    }
}
