//! Hardware models for the Gensor tensor-compilation stack.
//!
//! Construction tensor compilers never profile on the device while they
//! build a schedule; instead they consult an *architecture description* —
//! peak throughput, the memory hierarchy (capacity / latency / bandwidth per
//! level), and the occupancy limits of the compute units. This crate is that
//! description. The Gensor policy (`gensor` crate), the Roller baseline
//! (`roller`) and the analytical performance simulator (`simgpu`) are all
//! parameterised by a [`GpuSpec`].
//!
//! Two device presets mirror the paper's evaluation platforms
//! ([`GpuSpec::rtx4090`] for the cloud server, [`GpuSpec::orin_nano`] for the
//! edge device), plus a [`GpuSpec::a100`] preset used by tests to check the
//! stack generalises across architectures.

pub mod presets;
pub mod spec;

pub use spec::{GpuSpec, LevelKind, MemLevel, SpecError};
