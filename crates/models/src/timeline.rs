//! The Fig. 12 scenario: interleaved optimization and inference under
//! dynamic structural changes.
//!
//! A MobileNetV2-style model infers a fixed number of frames, then its
//! channel widths change (an edge-side structural adaptation), forcing
//! re-optimization; the cycle repeats. The figure compares the *total*
//! wall time (optimizing + inferring) of PyTorch (no optimization),
//! Ansor (excellent kernels, enormous tuning time), Roller and Gensor.

use crate::pipeline::compile_model;
use crate::zoo::mobilenet_v2_width;
use hardware::GpuSpec;
use simgpu::Tuner;

/// One segment of the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// `"optimize"` or `"inference"`.
    pub kind: SegmentKind,
    /// Duration in seconds.
    pub seconds: f64,
}

/// Segment type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    Optimize,
    Inference,
}

/// Timeline of one method over the whole scenario.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Method name.
    pub method: String,
    /// Alternating segments.
    pub segments: Vec<Segment>,
}

impl Timeline {
    /// Total scenario time in seconds.
    pub fn total_s(&self) -> f64 {
        self.segments.iter().map(|s| s.seconds).sum()
    }

    /// Total time spent optimizing.
    pub fn optimize_s(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Optimize)
            .map(|s| s.seconds)
            .sum()
    }
}

/// Run the scenario: `phases` channel configurations (the paper adjusts 3
/// times → 4 phases), `frames` inferences per phase, batch 128.
pub fn run_scenario(
    tuner: &dyn Tuner,
    spec: &GpuSpec,
    widths: &[u64],
    frames: u64,
    batch: u64,
) -> Timeline {
    let mut segments = Vec::new();
    for &w in widths {
        let graph = mobilenet_v2_width(batch, w);
        let cm = compile_model(tuner, &graph, spec);
        // Sub-millisecond "tuning" is harness noise (library dispatch),
        // not an optimization phase.
        if cm.tuning_s > 1e-3 {
            segments.push(Segment {
                kind: SegmentKind::Optimize,
                seconds: cm.tuning_s,
            });
        }
        let batches = frames.div_ceil(batch);
        segments.push(Segment {
            kind: SegmentKind::Inference,
            seconds: batches as f64 * cm.pass_time_us / 1e6,
        });
    }
    Timeline {
        method: tuner.name().to_string(),
        segments,
    }
}

/// The paper's widths: the base network plus three channel adjustments.
pub const SCENARIO_WIDTHS: [u64; 4] = [16, 12, 20, 16];

#[cfg(test)]
mod tests {
    use super::*;
    use gensor::Gensor;
    use roller::Roller;
    use search::{Ansor, Eager};

    fn small_scenario(tuner: &dyn Tuner) -> Timeline {
        let spec = GpuSpec::rtx4090();
        run_scenario(tuner, &spec, &[16, 12], 256, 128)
    }

    #[test]
    fn eager_never_optimizes() {
        let t = small_scenario(&Eager);
        assert!(t.optimize_s() < 1e-9);
        assert!(t.segments.iter().all(|s| s.kind == SegmentKind::Inference));
    }

    #[test]
    fn construction_methods_optimize_in_seconds() {
        for tuner in [
            Box::new(Gensor::default()) as Box<dyn Tuner>,
            Box::new(Roller::default()),
        ] {
            let t = small_scenario(tuner.as_ref());
            assert!(t.optimize_s() < 30.0, "{}: {}", t.method, t.optimize_s());
            assert!(t.optimize_s() > 0.0);
        }
    }

    #[test]
    fn ansor_tuning_dwarfs_everything() {
        // With its simulated measurement clock, Ansor's optimization time
        // dominates the scenario by orders of magnitude.
        let spec = GpuSpec::rtx4090();
        let ansor = run_scenario(&Ansor::with_trials(100), &spec, &[16], 256, 128);
        let gensor = run_scenario(&Gensor::default(), &spec, &[16], 256, 128);
        assert!(ansor.optimize_s() > 100.0 * gensor.optimize_s().max(1e-3));
    }

    #[test]
    fn gensor_total_beats_eager_and_roller_shape() {
        // Fig. 12's conclusion: Gensor has the shortest total time.
        // (PyTorch pays slow inference, Ansor pays tuning; Roller is the
        // close competitor.) Honest wall-clock tuning only means something
        // in an optimized build — in debug, construction is ~20x slower
        // and the premise of the comparison does not hold.
        if cfg!(debug_assertions) {
            return;
        }
        let spec = GpuSpec::rtx4090();
        let frames = 20_000;
        let g = run_scenario(&Gensor::default(), &spec, &SCENARIO_WIDTHS, frames, 128);
        let e = run_scenario(&Eager, &spec, &SCENARIO_WIDTHS, frames, 128);
        assert!(
            g.total_s() < e.total_s(),
            "Gensor {:.1}s vs eager {:.1}s",
            g.total_s(),
            e.total_s()
        );
    }
}
