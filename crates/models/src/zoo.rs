//! The evaluation model zoo.
//!
//! Layer inventories follow the published architectures (He et al. '16 for
//! the ResNets, Sandler et al. '18 for MobileNetV2, Devlin et al. '19 for
//! BERT-small, Radford et al. '19 for GPT-2 124M). Two modelling
//! substitutions, documented in DESIGN.md:
//!
//! * max-pool layers are costed as average pools (same window/stride —
//!   identical data movement, one fewer ALU op per element);
//! * depthwise convolutions are costed as memory-bound elementwise passes
//!   with 18 ops/element (9 MACs): a depthwise 3×3 reads ≈1–2× its output
//!   volume and is bandwidth-bound on every GPU, which is exactly how the
//!   elementwise cost model behaves.

use crate::graph::{layer, ModelGraph};
use tensor_expr::OpSpec;

/// ResNet-50 for `batch`×3×224×224 inputs.
pub fn resnet50(batch: u64) -> ModelGraph {
    let n = batch;
    let mut layers = vec![
        layer(
            "conv1.7x7",
            OpSpec::conv2d(n, 3, 224, 224, 64, 7, 7, 2, 3),
            1,
        ),
        layer("maxpool", OpSpec::avg_pool2d(n, 64, 112, 112, 3, 2), 1),
    ];
    // Bottleneck stages: (spatial, width, out_ch, blocks, first_stride).
    let stages: [(u64, u64, u64, u32, u64); 4] = [
        (56, 64, 256, 3, 1),
        (56, 128, 512, 4, 2),
        (28, 256, 1024, 6, 2),
        (14, 512, 2048, 3, 2),
    ];
    let mut in_ch = 64;
    for (si, &(hw_in, w, out_ch, blocks, stride)) in stages.iter().enumerate() {
        let hw = if stride == 2 { hw_in / 2 } else { hw_in };
        let s = si + 2;
        // First block: projection + possibly strided 3x3.
        layers.push(layer(
            &format!("conv{s}.a.1x1reduce"),
            OpSpec::conv2d(n, in_ch, hw_in, hw_in, w, 1, 1, 1, 0),
            1,
        ));
        layers.push(layer(
            &format!("conv{s}.a.3x3"),
            OpSpec::conv2d(n, w, hw_in, hw_in, w, 3, 3, stride, 1),
            1,
        ));
        layers.push(layer(
            &format!("conv{s}.a.1x1expand"),
            OpSpec::conv2d(n, w, hw, hw, out_ch, 1, 1, 1, 0),
            1,
        ));
        layers.push(layer(
            &format!("conv{s}.a.downsample"),
            OpSpec::conv2d(n, in_ch, hw_in, hw_in, out_ch, 1, 1, stride, 0),
            1,
        ));
        // Remaining identity blocks.
        let rest = blocks - 1;
        if rest > 0 {
            layers.push(layer(
                &format!("conv{s}.b.1x1reduce"),
                OpSpec::conv2d(n, out_ch, hw, hw, w, 1, 1, 1, 0),
                rest,
            ));
            layers.push(layer(
                &format!("conv{s}.b.3x3"),
                OpSpec::conv2d(n, w, hw, hw, w, 3, 3, 1, 1),
                rest,
            ));
            layers.push(layer(
                &format!("conv{s}.b.1x1expand"),
                OpSpec::conv2d(n, w, hw, hw, out_ch, 1, 1, 1, 0),
                rest,
            ));
        }
        // Residual adds + ReLUs (elementwise, fused by compiler stacks).
        layers.push(layer(
            &format!("conv{s}.residual"),
            OpSpec::elementwise(n * out_ch * hw * hw, 2, 1),
            blocks,
        ));
        in_ch = out_ch;
    }
    layers.push(layer("avgpool", OpSpec::avg_pool2d(n, 2048, 7, 7, 7, 1), 1));
    layers.push(layer("fc", OpSpec::gemm(n, 2048, 1000), 1));
    ModelGraph::new("ResNet-50", batch, layers)
}

/// ResNet-34 (basic blocks), used by the paper's Fig. 10.
pub fn resnet34(batch: u64) -> ModelGraph {
    let n = batch;
    let mut layers = vec![
        layer(
            "conv1.7x7",
            OpSpec::conv2d(n, 3, 224, 224, 64, 7, 7, 2, 3),
            1,
        ),
        layer("maxpool", OpSpec::avg_pool2d(n, 64, 112, 112, 3, 2), 1),
    ];
    let stages: [(u64, u64, u32, u64); 4] = [
        (56, 64, 3, 1),
        (56, 128, 4, 2),
        (28, 256, 6, 2),
        (14, 512, 3, 2),
    ];
    let mut in_ch = 64;
    for (si, &(hw_in, w, blocks, stride)) in stages.iter().enumerate() {
        let hw = if stride == 2 { hw_in / 2 } else { hw_in };
        let s = si + 2;
        layers.push(layer(
            &format!("conv{s}.a.3x3s"),
            OpSpec::conv2d(n, in_ch, hw_in, hw_in, w, 3, 3, stride, 1),
            1,
        ));
        layers.push(layer(
            &format!("conv{s}.3x3"),
            OpSpec::conv2d(n, w, hw, hw, w, 3, 3, 1, 1),
            2 * blocks - 1,
        ));
        layers.push(layer(
            &format!("conv{s}.residual"),
            OpSpec::elementwise(n * w * hw * hw, 2, 1),
            blocks,
        ));
        in_ch = w;
    }
    layers.push(layer("avgpool", OpSpec::avg_pool2d(n, 512, 7, 7, 7, 1), 1));
    layers.push(layer("fc", OpSpec::gemm(n, 512, 1000), 1));
    ModelGraph::new("ResNet-34", batch, layers)
}

/// MobileNetV2, width multiplier 1.0, for `batch`×3×224×224 inputs.
pub fn mobilenet_v2(batch: u64) -> ModelGraph {
    mobilenet_v2_width(batch, 16)
}

/// MobileNetV2 with an adjustable base width (in channels; the standard
/// network uses 16). The paper's Fig. 12 dynamically adjusts channel
/// counts — this is the knob.
pub fn mobilenet_v2_width(batch: u64, base: u64) -> ModelGraph {
    let n = batch;
    let scale = |c: u64| (c * base).div_ceil(16).max(8);
    let mut layers = vec![layer(
        "conv1.3x3",
        OpSpec::conv2d(n, 3, 224, 224, scale(32), 3, 3, 2, 1),
        1,
    )];
    // (expansion t, out channels c, repeats n, first stride s) per paper.
    let rows: [(u64, u64, u32, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = scale(32);
    let mut hw = 112u64;
    for (ri, &(t, c, reps, s)) in rows.iter().enumerate() {
        let c = scale(c);
        for r in 0..reps {
            let stride = if r == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let out_hw = if stride == 2 { hw / 2 } else { hw };
            if t > 1 {
                layers.push(layer(
                    &format!("ir{ri}.{r}.expand1x1"),
                    OpSpec::conv2d(n, in_ch, hw, hw, hidden, 1, 1, 1, 0),
                    1,
                ));
            }
            // Depthwise 3x3 costed as a bandwidth-bound pass (see module
            // docs).
            layers.push(layer(
                &format!("ir{ri}.{r}.dw3x3"),
                OpSpec::elementwise(n * hidden * out_hw * out_hw, 1, 18),
                1,
            ));
            layers.push(layer(
                &format!("ir{ri}.{r}.project1x1"),
                OpSpec::conv2d(n, hidden, out_hw, out_hw, c, 1, 1, 1, 0),
                1,
            ));
            if stride == 1 && in_ch == c {
                layers.push(layer(
                    &format!("ir{ri}.{r}.residual"),
                    OpSpec::elementwise(n * c * out_hw * out_hw, 2, 1),
                    1,
                ));
            }
            in_ch = c;
            hw = out_hw;
        }
    }
    layers.push(layer(
        "conv.last1x1",
        OpSpec::conv2d(n, in_ch, 7, 7, scale(1280), 1, 1, 1, 0),
        1,
    ));
    layers.push(layer(
        "avgpool",
        OpSpec::avg_pool2d(n, scale(1280), 7, 7, 7, 1),
        1,
    ));
    layers.push(layer("fc", OpSpec::gemm(n, scale(1280), 1000), 1));
    ModelGraph::new("MobileNetV2", batch, layers)
}

/// A transformer encoder/decoder stack with the usual projections.
#[allow(clippy::too_many_arguments)]
fn transformer(
    name: &str,
    batch: u64,
    seq: u64,
    layers_n: u32,
    hidden: u64,
    heads: u64,
    ff: u64,
    vocab_head: Option<u64>,
) -> ModelGraph {
    let n = batch;
    let tok = n * seq;
    let head_dim = hidden / heads;
    let mut layers = vec![
        // QKV + output projections.
        layer("attn.qkv", OpSpec::gemm(tok, hidden, hidden), 3 * layers_n),
        layer("attn.out", OpSpec::gemm(tok, hidden, hidden), layers_n),
        // Scores QK^T and context (scores·V), one GEMM per head per batch.
        layer(
            "attn.scores",
            OpSpec::gemm(seq, head_dim, seq),
            layers_n * (n * heads) as u32,
        ),
        layer(
            "attn.context",
            OpSpec::gemm(seq, seq, head_dim),
            layers_n * (n * heads) as u32,
        ),
        // Feed-forward.
        layer("ffn.up", OpSpec::gemm(tok, hidden, ff), layers_n),
        layer("ffn.down", OpSpec::gemm(tok, ff, hidden), layers_n),
        // Softmax / layernorm / GELU as elementwise passes.
        layer(
            "softmax",
            OpSpec::elementwise(n * heads * seq * seq, 1, 5),
            layers_n,
        ),
        layer(
            "layernorm",
            OpSpec::elementwise(tok * hidden, 1, 8),
            2 * layers_n,
        ),
        layer("gelu", OpSpec::elementwise(tok * ff, 1, 8), layers_n),
    ];
    if let Some(vocab) = vocab_head {
        layers.push(layer("lm_head", OpSpec::gemm(tok, hidden, vocab), 1));
    }
    ModelGraph::new(name, batch, layers)
}

/// BERT-small (4 layers, hidden 512, 8 heads, FF 2048).
pub fn bert_small(batch: u64, seq: u64) -> ModelGraph {
    transformer("BERT-small", batch, seq, 4, 512, 8, 2048, None)
}

/// GPT-2 124M (12 layers, hidden 768, 12 heads, FF 3072, tied LM head).
pub fn gpt2(batch: u64, seq: u64) -> ModelGraph {
    transformer("GPT-2", batch, seq, 12, 768, 12, 3072, Some(50257))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_flops_matches_published_figure() {
        // ResNet-50 is ~4.1 GMACs per 224×224 image (torchvision's
        // convention); with multiply-add = 2 FLOPs that is ~8.2 GFLOPs.
        let g = resnet50(1);
        let gflops = g.total_flops() / 1e9;
        assert!(
            (7.2..=9.2).contains(&gflops),
            "ResNet-50 ≈ 8.2 GFLOPs/img, got {gflops:.2}"
        );
    }

    #[test]
    fn resnet34_flops_matches_published_figure() {
        // ResNet-34 is ~3.6 GMACs ≈ 7.3 GFLOPs per image.
        let g = resnet34(1);
        let gflops = g.total_flops() / 1e9;
        assert!((6.4..=8.2).contains(&gflops), "{gflops:.2}");
    }

    #[test]
    fn mobilenet_flops_matches_published_figure() {
        // MobileNetV2 is ~0.6 GFLOPs (2·300M MACs) per image.
        let g = mobilenet_v2(1);
        let gflops = g.total_flops() / 1e9;
        assert!((0.4..=0.9).contains(&gflops), "{gflops:.2}");
    }

    #[test]
    fn gpt2_forward_flops_scale() {
        // GPT-2 124M forward ≈ 2 · N_params · tokens ≈ 0.25 GFLOP/token
        // (+ LM head). 1024 tokens → ~350 GFLOPs incl. the head and
        // attention quadratic terms.
        let g = gpt2(1, 1024);
        let gflops = g.total_flops() / 1e9;
        assert!((200.0..=600.0).contains(&gflops), "{gflops:.1}");
    }

    #[test]
    fn bert_small_structure() {
        let g = bert_small(8, 128);
        assert!(g.unique_ops() >= 8);
        // Hidden×hidden projections fold together: QKV (3/layer) plus the
        // attention output projection (1/layer) over 4 layers = 16.
        let proj = g
            .layers
            .iter()
            .find(|l| l.op == OpSpec::gemm(8 * 128, 512, 512))
            .unwrap();
        assert_eq!(proj.count, 16);
    }

    #[test]
    fn batch_scales_flops_linearly() {
        let f1 = resnet50(1).total_flops();
        let f8 = resnet50(8).total_flops();
        assert!((f8 / f1 - 8.0).abs() < 0.01);
    }

    #[test]
    fn channel_width_knob_scales_mobilenet() {
        let narrow = mobilenet_v2_width(1, 8).total_flops();
        let wide = mobilenet_v2_width(1, 32).total_flops();
        assert!(wide > 2.0 * narrow);
    }

    #[test]
    fn all_models_have_valid_layer_shapes() {
        // Constructors assert shape validity internally; instantiating the
        // zoo exercises every layer constructor.
        for g in [
            resnet50(128),
            resnet34(128),
            mobilenet_v2(128),
            bert_small(8, 512),
            gpt2(1, 1024),
        ] {
            assert!(g.total_flops() > 0.0, "{}", g.name);
            assert!(g.total_launches() > g.unique_ops() as u64 / 2);
        }
    }
}
