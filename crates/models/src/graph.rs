//! Operator-graph representation for end-to-end workloads.

use serde::{Deserialize, Serialize};
use tensor_expr::OpSpec;

/// One layer kind with a repeat count (identical shapes are folded — the
/// compiler tunes each unique shape once, exactly as a real deployment
/// caches kernels per shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Display name, e.g. `"conv2_x.3x3"`.
    pub name: String,
    /// The operator instance.
    pub op: OpSpec,
    /// How many times this exact shape executes per forward pass.
    pub count: u32,
}

/// A model = a bag of layers plus metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name, e.g. `"ResNet-50"`.
    pub name: String,
    /// Batch size the shapes were instantiated with.
    pub batch: u64,
    /// Layers in execution order (with repeat counts).
    pub layers: Vec<Layer>,
}

impl ModelGraph {
    /// Construct with folding: layers with identical ops are merged.
    pub fn new(name: &str, batch: u64, layers: Vec<Layer>) -> ModelGraph {
        let mut folded: Vec<Layer> = Vec::new();
        for l in layers {
            if let Some(existing) = folded.iter_mut().find(|f| f.op == l.op) {
                existing.count += l.count;
            } else {
                folded.push(l);
            }
        }
        ModelGraph {
            name: name.to_string(),
            batch,
            layers: folded,
        }
    }

    /// Total forward-pass FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.op.flops() * l.count as f64)
            .sum()
    }

    /// Number of unique operator shapes (== compile tasks).
    pub fn unique_ops(&self) -> usize {
        self.layers.len()
    }

    /// Total kernel launches per forward pass.
    pub fn total_launches(&self) -> u64 {
        self.layers.iter().map(|l| l.count as u64).sum()
    }

    /// Layers excluding standalone elementwise ops (what a fusing compiler
    /// actually launches).
    pub fn fused_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers
            .iter()
            .filter(|l| !matches!(l.op, OpSpec::Elementwise { .. }))
    }
}

/// Convenience constructor.
pub fn layer(name: &str, op: OpSpec, count: u32) -> Layer {
    Layer {
        name: name.to_string(),
        op,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_shapes_fold() {
        let op = OpSpec::gemm(64, 64, 64);
        let g = ModelGraph::new(
            "toy",
            1,
            vec![layer("a", op.clone(), 2), layer("b", op.clone(), 3)],
        );
        assert_eq!(g.unique_ops(), 1);
        assert_eq!(g.layers[0].count, 5);
        assert_eq!(g.total_launches(), 5);
    }

    #[test]
    fn flops_scale_with_count() {
        let op = OpSpec::gemm(64, 64, 64);
        let g = ModelGraph::new("toy", 1, vec![layer("a", op.clone(), 4)]);
        assert_eq!(g.total_flops(), 4.0 * op.flops());
    }

    #[test]
    fn fused_layers_skip_elementwise() {
        let g = ModelGraph::new(
            "toy",
            1,
            vec![
                layer("gemm", OpSpec::gemm(8, 8, 8), 1),
                layer("relu", OpSpec::elementwise(64, 1, 1), 1),
            ],
        );
        assert_eq!(g.fused_layers().count(), 1);
    }
}
