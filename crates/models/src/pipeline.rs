//! The end-to-end compile-and-run pipeline.

use crate::graph::ModelGraph;
use hardware::GpuSpec;
use simgpu::{CompiledKernel, Tuner};

/// A model compiled with one method.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// Model name.
    pub model: String,
    /// Method name.
    pub method: String,
    /// Per-unique-layer kernels: (layer name, kernel, launches per pass).
    pub kernels: Vec<(String, CompiledKernel, u32)>,
    /// One forward pass in microseconds.
    pub pass_time_us: f64,
    /// Total optimization latency (honest tuner wall time + simulated
    /// measurement clock) across all unique layers, seconds.
    pub tuning_s: f64,
    /// Images (or sequences) per second: `batch / pass_time`.
    pub throughput: f64,
}

impl CompiledModel {
    /// Relative speed vs another compiled instance of the same model.
    pub fn speedup_over(&self, other: &CompiledModel) -> f64 {
        other.pass_time_us / self.pass_time_us
    }
}

/// Compile every unique operator of `graph` with `tuner` and aggregate the
/// end-to-end forward-pass time.
///
/// Compiler stacks fuse standalone elementwise layers into their producers
/// (those layers cost nothing extra); the eager baseline launches each one
/// (`Tuner::fuses_elementwise`). Unique operators are compiled in parallel
/// with a crossbeam scope — they are independent tuning tasks.
pub fn compile_model(tuner: &dyn Tuner, graph: &ModelGraph, spec: &GpuSpec) -> CompiledModel {
    let layers: Vec<_> = if tuner.fuses_elementwise() {
        graph.fused_layers().cloned().collect()
    } else {
        graph.layers.clone()
    };
    let compiled = simgpu::parallel_map(&layers, |l| tuner.compile(&l.op, spec));
    let kernels: Vec<(String, CompiledKernel, u32)> = layers
        .iter()
        .zip(compiled)
        .map(|(l, k)| (l.name.clone(), k, l.count))
        .collect();
    let pass_time_us: f64 = kernels
        .iter()
        .map(|(_, k, c)| k.report.time_us * *c as f64)
        .sum();
    let tuning_s: f64 = kernels.iter().map(|(_, k, _)| k.total_tuning_s()).sum();
    CompiledModel {
        model: graph.name.clone(),
        method: tuner.name().to_string(),
        kernels,
        pass_time_us,
        tuning_s,
        throughput: graph.batch as f64 / (pass_time_us / 1e6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use gensor::Gensor;
    use roller::Roller;
    use search::Eager;

    #[test]
    fn resnet50_pipeline_produces_sane_numbers() {
        let spec = GpuSpec::rtx4090();
        let g = zoo::resnet50(128);
        let cm = compile_model(&Roller::default(), &g, &spec);
        assert!(cm.pass_time_us > 0.0);
        // 128 images in a batch; a 4090 does a few thousand fps on
        // ResNet-50 FP32 — demand an order-of-magnitude-sane range.
        assert!(
            (200.0..100_000.0).contains(&cm.throughput),
            "fps {}",
            cm.throughput
        );
        assert_eq!(cm.kernels.len(), g.fused_layers().count());
    }

    #[test]
    fn gensor_end_to_end_beats_roller() {
        let spec = GpuSpec::rtx4090();
        let g = zoo::bert_small(8, 128);
        let gm = compile_model(&Gensor::default(), &g, &spec);
        let rm = compile_model(&Roller::default(), &g, &spec);
        assert!(
            gm.speedup_over(&rm) > 1.0,
            "Gensor {} vs Roller {} µs",
            gm.pass_time_us,
            rm.pass_time_us
        );
    }

    #[test]
    fn eager_pays_for_elementwise_and_dispatch() {
        let spec = GpuSpec::rtx4090();
        let g = zoo::resnet50(16);
        let eager = compile_model(&Eager, &g, &spec);
        let tuned = compile_model(&Roller::default(), &g, &spec);
        // Eager compiles *more* kernels (elementwise not fused)...
        assert!(eager.kernels.len() > tuned.kernels.len());
        // ...and is much slower end-to-end.
        assert!(
            tuned.speedup_over(&eager) > 2.0,
            "tuned {} vs eager {} µs",
            tuned.pass_time_us,
            eager.pass_time_us
        );
    }

    #[test]
    fn tuning_cost_aggregates_across_layers() {
        let spec = GpuSpec::rtx4090();
        let g = zoo::bert_small(1, 64);
        let cm = compile_model(&search::Ansor::with_trials(50), &g, &spec);
        // 50 simulated seconds per unique (non-elementwise) layer.
        let expect = 50.0 * g.fused_layers().count() as f64;
        assert!(
            cm.tuning_s >= expect * 0.99,
            "{} vs {}",
            cm.tuning_s,
            expect
        );
    }
}
