//! `models` — the end-to-end DNN workloads of the paper's §V-C evaluation.
//!
//! Provides:
//! * [`graph`] — a minimal operator-graph representation (layers with
//!   repeat counts).
//! * [`zoo`] — the paper's four evaluation models (BERT-small, ResNet-50,
//!   MobileNetV2, GPT-2) plus ResNet-34 for Fig. 10, with layer shapes
//!   reconstructed from the public architectures.
//! * [`pipeline`] — the compile-and-run pipeline: every unique operator is
//!   compiled with a [`simgpu::Tuner`], end-to-end latency is the sum of
//!   per-kernel simulated times (compiled stacks fuse standalone
//!   elementwise ops into their producers; the eager baseline launches and
//!   pays dispatch for each).
//! * [`dynamic`] — the dynamic-shape BERT workload of Fig. 11.
//! * [`timeline`] — the optimize/infer interleaving scenario of Fig. 12.

pub mod dynamic;
pub mod graph;
pub mod pipeline;
pub mod timeline;
pub mod zoo;

pub use graph::{Layer, ModelGraph};
pub use pipeline::{compile_model, CompiledModel};
