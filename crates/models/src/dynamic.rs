//! Dynamic-shape workloads (paper Fig. 11): BERT-small across sequence
//! lengths.

use crate::graph::ModelGraph;
use crate::pipeline::{compile_model, CompiledModel};
use crate::zoo::bert_small;
use hardware::GpuSpec;
use search::DietCode;
use simgpu::Tuner;

/// The Fig. 11 sequence-length sweep.
pub const DYNAMIC_SEQ_LENS: [u64; 5] = [64, 128, 256, 384, 512];

/// Per-shape results of one method on the dynamic BERT workload.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// Method name.
    pub method: String,
    /// One compiled model per sequence length.
    pub per_shape: Vec<CompiledModel>,
    /// Total optimization latency across all shapes, seconds.
    pub total_tuning_s: f64,
}

impl DynamicResult {
    /// Throughput (sequences/s) for each shape.
    pub fn throughputs(&self) -> Vec<f64> {
        self.per_shape.iter().map(|m| m.throughput).collect()
    }
}

/// Run a per-shape tuner over the dynamic workload: every sequence length
/// is a fresh compile task (what Gensor/Roller/PyTorch do).
pub fn run_per_shape(tuner: &dyn Tuner, batch: u64, spec: &GpuSpec) -> DynamicResult {
    let per_shape: Vec<CompiledModel> = DYNAMIC_SEQ_LENS
        .iter()
        .map(|&s| compile_model(tuner, &bert_small(batch, s), spec))
        .collect();
    let total_tuning_s = per_shape.iter().map(|m| m.tuning_s).sum();
    DynamicResult {
        method: tuner.name().to_string(),
        per_shape,
        total_tuning_s,
    }
}

/// Run DietCode: one joint tuning pass per operator *family* (the same
/// layer across all sequence lengths shares a micro-kernel).
pub fn run_dietcode(dc: &DietCode, batch: u64, spec: &GpuSpec) -> DynamicResult {
    let graphs: Vec<ModelGraph> = DYNAMIC_SEQ_LENS
        .iter()
        .map(|&s| bert_small(batch, s))
        .collect();
    // Families: i-th fused layer across all graphs (the zoo builds the
    // same layer list for every seq length).
    let n_layers = graphs[0].fused_layers().count();
    let mut per_shape_time = vec![0.0f64; graphs.len()];
    let mut total_tuning_s = 0.0;
    let mut per_shape_kernels: Vec<Vec<(String, simgpu::CompiledKernel, u32)>> =
        vec![Vec::new(); graphs.len()];
    for li in 0..n_layers {
        let family: Vec<_> = graphs
            .iter()
            .map(|g| g.fused_layers().nth(li).expect("same layer list").clone())
            .collect();
        let ops: Vec<_> = family.iter().map(|l| l.op.clone()).collect();
        let kernels = dc.compile_family(&ops, spec);
        for (si, k) in kernels.into_iter().enumerate() {
            total_tuning_s += k.total_tuning_s();
            per_shape_time[si] += k.report.time_us * family[si].count as f64;
            per_shape_kernels[si].push((family[si].name.clone(), k, family[si].count));
        }
    }
    let per_shape: Vec<CompiledModel> = graphs
        .iter()
        .zip(per_shape_time)
        .zip(per_shape_kernels)
        .map(|((g, t), kernels)| CompiledModel {
            model: g.name.clone(),
            method: "DietCode".into(),
            kernels,
            pass_time_us: t,
            tuning_s: 0.0, // family cost reported at the result level
            throughput: g.batch as f64 / (t / 1e6),
        })
        .collect();
    DynamicResult {
        method: "DietCode".into(),
        per_shape,
        total_tuning_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gensor::Gensor;
    use roller::Roller;

    #[test]
    fn per_shape_sweep_covers_all_lengths() {
        let spec = GpuSpec::rtx4090();
        let res = run_per_shape(&Roller::default(), 8, &spec);
        assert_eq!(res.per_shape.len(), DYNAMIC_SEQ_LENS.len());
        // Longer sequences take longer.
        let t: Vec<f64> = res.per_shape.iter().map(|m| m.pass_time_us).collect();
        assert!(t.windows(2).all(|w| w[1] > w[0]), "{t:?}");
    }

    #[test]
    fn gensor_beats_roller_on_dynamic_bert() {
        // Fig. 11: Gensor ≈ 1.17× Roller on average across shapes.
        let spec = GpuSpec::rtx4090();
        let g = run_per_shape(&Gensor::default(), 8, &spec);
        let r = run_per_shape(&Roller::default(), 8, &spec);
        let avg: f64 = g
            .per_shape
            .iter()
            .zip(&r.per_shape)
            .map(|(a, b)| a.speedup_over(b))
            .sum::<f64>()
            / g.per_shape.len() as f64;
        assert!(avg > 1.0, "avg speedup {avg:.3}");
    }

    #[test]
    fn dietcode_tunes_cheaper_but_runs_slower_than_gensor() {
        // Fig. 11's trade-off: DietCode's joint tuning is cheaper than
        // Gensor's per-shape tuning *per simulated clock*, but its shared
        // schedules reach only a fraction of Gensor's throughput.
        let spec = GpuSpec::rtx4090();
        let dc = run_dietcode(
            &DietCode {
                trials: 500,
                ..DietCode::default()
            },
            8,
            &spec,
        );
        let gen = run_per_shape(&Gensor::default(), 8, &spec);
        let rel: Vec<f64> = dc
            .throughputs()
            .iter()
            .zip(gen.throughputs())
            .map(|(d, g)| d / g)
            .collect();
        let avg = rel.iter().sum::<f64>() / rel.len() as f64;
        assert!(
            (0.5..=1.05).contains(&avg),
            "DietCode should trail Gensor moderately: {avg:.3} ({rel:?})"
        );
    }
}
