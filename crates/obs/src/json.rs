//! Minimal JSON writing helpers shared by the JSONL collector and the
//! Chrome-trace exporter. Writing only — the crate never parses JSON.

use crate::event::Value;

/// `s` as a JSON string literal (quoted, escaped).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A [`Value`] as a JSON value. Non-finite floats become strings (JSON has
/// no Infinity/NaN literal).
pub fn value(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) if x.is_finite() => {
            // `{}` on an integral f64 prints without a dot; keep a dot so
            // typed readers see a float.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Value::F64(x) => string(&x.to_string()),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => string(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_and_control_chars() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn values_render_as_json() {
        assert_eq!(value(&Value::U64(3)), "3");
        assert_eq!(value(&Value::I64(-3)), "-3");
        assert_eq!(value(&Value::F64(2.5)), "2.5");
        assert_eq!(value(&Value::F64(2.0)), "2.0");
        assert_eq!(value(&Value::F64(f64::INFINITY)), "\"inf\"");
        assert_eq!(value(&Value::Bool(true)), "true");
        assert_eq!(value(&Value::Str("x".into())), "\"x\"");
    }
}
