//! The event model: timestamps, thread ids, levels, structured values.
//!
//! Every observation is one [`Event`]: a microsecond timestamp relative to
//! the process-wide epoch, a small dense thread id, an [`EventKind`], and a
//! list of structured key/value fields. Events are deliberately flat — the
//! span hierarchy is reconstructed by exporters from Begin/End pairs and
//! the `span` field, never stored as a tree at record time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Chatty diagnostics; only recorded when a collector is installed.
    Debug,
    /// Notable but routine events; only recorded when a collector is
    /// installed.
    Info,
    /// Something unexpected that the code recovered from. Falls back to
    /// stderr when no collector is installed.
    Warn,
    /// A failure the caller will observe. Falls back to stderr when no
    /// collector is installed.
    Error,
}

impl Level {
    /// Lower-case name, as rendered in logs and exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::Str(v.clone())
    }
}

/// What an [`Event`] marks.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. Paired with an [`EventKind::End`] carrying the same
    /// `span` field.
    Begin {
        /// Span name from the static taxonomy (DESIGN §10).
        name: &'static str,
    },
    /// A span closed.
    End {
        /// Span name, mirroring the Begin.
        name: &'static str,
    },
    /// An instantaneous marker (e.g. one `walk.step`).
    Point {
        /// Marker name.
        name: &'static str,
    },
    /// A leveled log line routed through the collector.
    Log {
        /// Severity.
        level: Level,
        /// Formatted message.
        message: String,
    },
}

impl EventKind {
    /// The event's name (`"log"` for log lines).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Begin { name } | EventKind::End { name } | EventKind::Point { name } => name,
            EventKind::Log { .. } => "log",
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process-wide trace epoch.
    pub ts_us: u64,
    /// Dense per-process thread id (1, 2, …) — *not* the OS tid.
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// Structured key/value fields. Span Begin/End events carry a `span`
    /// field with the span's process-unique id.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Intern `s` into a `&'static str`. Event names and field keys are
/// static in the in-process taxonomy; events arriving off the wire
/// (a `TraceDump` from a remote daemon) carry owned strings, and this is
/// how they re-enter the [`Event`] model. The set of distinct names is
/// small and bounded by the span taxonomy, so the leak is a one-time
/// cost per name, deduplicated forever after.
pub fn intern_name(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = set.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch (first observability call in the
/// process).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Dense thread id: 1 for the first thread that records, 2 for the next…
/// Stable for the thread's lifetime, compact enough for trace viewers.
pub fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.as_str(), "warn");
    }

    #[test]
    fn values_convert_from_primitives() {
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i32), Value::I64(-3));
        assert_eq!(Value::from(0.5), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
    }

    #[test]
    fn time_is_monotone_and_tid_is_stable() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        assert_eq!(current_tid(), current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(current_tid(), other);
    }

    #[test]
    fn interned_names_are_deduplicated() {
        let a = intern_name("obs.test.interned");
        let owned = String::from("obs.test.interned");
        let b = intern_name(&owned);
        assert!(std::ptr::eq(a, b), "same name must intern to one &'static");
        assert_ne!(intern_name("obs.test.other"), a);
    }

    #[test]
    fn field_lookup_finds_values() {
        let ev = Event {
            ts_us: 0,
            tid: 1,
            kind: EventKind::Point { name: "p" },
            fields: vec![("a", Value::U64(1)), ("b", Value::Bool(false))],
        };
        assert_eq!(ev.field("b"), Some(&Value::Bool(false)));
        assert_eq!(ev.field("c"), None);
        assert_eq!(ev.kind.name(), "p");
    }
}
