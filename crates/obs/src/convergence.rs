//! Per-walk convergence CSV: the paper's Fig. 8-style trace.
//!
//! Every instrumented construction walk emits one `walk.step` point per
//! annealing step, carrying the chosen action, its raw benefit and
//! normalized selection probability, the temperature, whether the state
//! was accepted into `top_results`, and the best simulated time seen so
//! far. This module flattens those points into a CSV with one row per
//! step, grouped by walk span id, ready for plotting temperature/benefit
//! convergence curves.
//!
//! Since the learned-benefit subsystem the rows also carry the departed
//! state (`state`, the `Etir::describe` string), the number of exact
//! benefit evaluations the step cost (`exact_evals`), and whether the
//! learned shortlist pruned the step (`pruned`) — so a saved walk log
//! doubles as labelled training data for `gensor learn train` and as an
//! audit trail for the pruning ratio. Rows from walks recorded before
//! those fields existed render with the trailing columns empty.

use crate::event::{Event, EventKind, Value};

/// CSV header emitted by [`walk_csv`].
pub const CSV_HEADER: &str =
    "walk,step,action,benefit,probability,temperature,accepted,best_time_us,state,exact_evals,pruned";

fn fmt(v: Option<&Value>) -> String {
    match v {
        Some(Value::U64(n)) => n.to_string(),
        Some(Value::I64(n)) => n.to_string(),
        Some(Value::F64(x)) if x.is_finite() => format!("{x}"),
        Some(Value::F64(_)) => "inf".to_string(),
        Some(Value::Bool(b)) => b.to_string(),
        Some(Value::Str(s)) => {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
        None => String::new(),
    }
}

/// Extract every `walk.step` point from `events` into CSV rows, ordered
/// by (walk id, step).
pub fn walk_csv(events: &[Event]) -> String {
    let mut rows: Vec<(u64, u64, String)> = Vec::new();
    for ev in events {
        if !matches!(ev.kind, EventKind::Point { name: "walk.step" }) {
            continue;
        }
        let walk = match ev.field("walk") {
            Some(Value::U64(id)) => *id,
            _ => 0,
        };
        let step = match ev.field("step") {
            Some(Value::U64(s)) => *s,
            _ => 0,
        };
        let row = format!(
            "{walk},{step},{},{},{},{},{},{},{},{},{}",
            fmt(ev.field("action")),
            fmt(ev.field("benefit")),
            fmt(ev.field("probability")),
            fmt(ev.field("temperature")),
            fmt(ev.field("accepted")),
            fmt(ev.field("best_time_us")),
            fmt(ev.field("state")),
            fmt(ev.field("exact_evals")),
            fmt(ev.field("pruned")),
        );
        rows.push((walk, step, row));
    }
    rows.sort_by_key(|(walk, step, _)| (*walk, *step));
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for (_, _, row) in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(walk: u64, step_n: u64, temp: f64, accepted: bool) -> Event {
        Event {
            ts_us: step_n,
            tid: 1,
            kind: EventKind::Point { name: "walk.step" },
            fields: vec![
                ("walk", Value::U64(walk)),
                ("step", Value::U64(step_n)),
                ("action", Value::Str("Tile".into())),
                ("benefit", Value::F64(1.5)),
                ("probability", Value::F64(0.25)),
                ("temperature", Value::F64(temp)),
                ("accepted", Value::Bool(accepted)),
                ("best_time_us", Value::F64(123.0)),
                ("state", Value::Str("smem[2, 1] @lvl0".into())),
                ("exact_evals", Value::U64(13)),
                ("pruned", Value::Bool(false)),
            ],
        }
    }

    #[test]
    fn rows_are_grouped_by_walk_and_ordered_by_step() {
        let events = vec![
            step(2, 0, 1e6, true),
            step(1, 1, 5e5, false),
            step(1, 0, 1e6, true),
        ];
        let csv = walk_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].starts_with("1,0,Tile,1.5,0.25,1000000,true,123"));
        assert!(lines[2].starts_with("1,1,"));
        assert!(lines[3].starts_with("2,0,"));
    }

    #[test]
    fn non_step_events_are_ignored_and_infinity_is_spelled_out() {
        let mut e = step(1, 0, 1e6, true);
        e.fields.retain(|(k, _)| *k != "best_time_us");
        e.fields.push(("best_time_us", Value::F64(f64::INFINITY)));
        let events = vec![
            e,
            Event {
                ts_us: 0,
                tid: 1,
                kind: EventKind::Point { name: "other" },
                fields: Vec::new(),
            },
        ];
        let csv = walk_csv(&events);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains(",inf"));
    }

    #[test]
    fn training_columns_are_emitted_and_legacy_rows_stay_loadable() {
        let full = step(1, 0, 1e6, true);
        let mut legacy = step(1, 1, 5e5, false);
        legacy
            .fields
            .retain(|(k, _)| !matches!(*k, "state" | "exact_evals" | "pruned"));
        let csv = walk_csv(&[full, legacy]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        // New rows carry state / exact_evals / pruned...
        assert!(
            lines[1].ends_with(",\"smem[2, 1] @lvl0\",13,false"),
            "{}",
            lines[1]
        );
        // ...legacy rows render the trailing columns empty.
        assert!(lines[2].ends_with(",123,,,"), "{}", lines[2]);
    }

    #[test]
    fn string_fields_with_commas_are_quoted() {
        let mut e = step(1, 0, 1e6, true);
        e.fields.retain(|(k, _)| *k != "action");
        e.fields
            .push(("action", Value::Str("Split { dim: 0, by: 2 }".into())));
        let csv = walk_csv(&[e]);
        assert!(csv.contains("\"Split { dim: 0, by: 2 }\""));
    }
}
