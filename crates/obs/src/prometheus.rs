//! Prometheus text-exposition exporter (and a minimal parser for
//! round-trip tests and CLI consumers).
//!
//! Renders the global registry in the text format scrapers expect:
//! `# HELP` / `# TYPE` headers, plain samples for counters and gauges,
//! and cumulative `_bucket{le="…"}` / `_sum` / `_count` rows for
//! histograms. Histogram bounds stay in microseconds — the `_us` name
//! suffix is the unit contract.

use crate::metrics::{self, MetricSnapshot, MetricValue};

/// Render one snapshot list (see [`metrics::snapshot`]).
pub fn render_snapshot(snap: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for m in snap {
        out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", m.name, m.name));
            }
            MetricValue::Histogram {
                cumulative,
                sum_us,
                count,
            } => {
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                for (le, c) in cumulative {
                    if *le == u64::MAX {
                        out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {c}\n", m.name));
                    } else {
                        out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {c}\n", m.name));
                    }
                }
                out.push_str(&format!("{}_sum {sum_us}\n", m.name));
                out.push_str(&format!("{}_count {count}\n", m.name));
            }
        }
    }
    out
}

/// Render the current process-global registry.
pub fn render() -> String {
    render_snapshot(&metrics::snapshot())
}

/// JSON-escape a string into `out` (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render one snapshot list as deterministic machine-readable JSON:
/// metrics sorted by name (the [`metrics::snapshot`] order), object keys
/// in a fixed order, integers rendered without float noise. Two renders
/// of the same snapshot are byte-identical — the `gensor metrics --json`
/// contract, mirroring `gensor lint --json`. Histograms expose the
/// derived `p50_us`/`p99_us` alongside `sum_us`/`count` so consumers
/// need no bucket math.
pub fn render_json_snapshot(snap: &[MetricSnapshot]) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, m) in snap.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\":");
        push_json_str(&mut out, &m.name);
        out.push_str(",\"type\":");
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("\"counter\",\"value\":{v}"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("\"gauge\",\"value\":{v}"));
            }
            MetricValue::Histogram {
                cumulative,
                sum_us,
                count,
            } => {
                let p50 = metrics::quantile_from_cumulative(cumulative, *count, 0.50);
                let p99 = metrics::quantile_from_cumulative(cumulative, *count, 0.99);
                out.push_str(&format!(
                    "\"histogram\",\"count\":{count},\"sum_us\":{sum_us},\"p50_us\":{p50},\"p99_us\":{p99}"
                ));
            }
        }
        out.push_str(",\"help\":");
        push_json_str(&mut out, &m.help);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// One parsed sample line: `(metric_name, labels, value)`. `labels` is the
/// raw `{…}` body (empty for unlabeled samples).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Raw label body without braces, e.g. `le="500"`.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Parse the sample lines of a text-exposition document (comments and
/// blank lines are skipped; malformed lines are ignored).
pub fn parse_samples(text: &str) -> Vec<Sample> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => continue,
        };
        let Ok(value) = value_part.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => (n.to_string(), rest.trim_end_matches('}').to_string()),
            None => (name_part.to_string(), String::new()),
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricValue;

    fn snap() -> Vec<MetricSnapshot> {
        vec![
            MetricSnapshot {
                name: "gensor_test_hits_total".into(),
                help: "cache hits".into(),
                value: MetricValue::Counter(42),
            },
            MetricSnapshot {
                name: "gensor_test_inflight".into(),
                help: "jobs in flight".into(),
                value: MetricValue::Gauge(-1),
            },
            MetricSnapshot {
                name: "gensor_test_latency_us".into(),
                help: "latency".into(),
                value: MetricValue::Histogram {
                    cumulative: vec![(50, 1), (100, 3), (u64::MAX, 4)],
                    sum_us: 12_345,
                    count: 4,
                },
            },
        ]
    }

    #[test]
    fn rendering_emits_help_type_and_samples() {
        let text = render_snapshot(&snap());
        assert!(text.contains("# HELP gensor_test_hits_total cache hits"));
        assert!(text.contains("# TYPE gensor_test_hits_total counter"));
        assert!(text.contains("gensor_test_hits_total 42"));
        assert!(text.contains("gensor_test_inflight -1"));
        assert!(text.contains("gensor_test_latency_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("gensor_test_latency_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("gensor_test_latency_us_sum 12345"));
        assert!(text.contains("gensor_test_latency_us_count 4"));
    }

    #[test]
    fn samples_round_trip_through_the_parser() {
        let text = render_snapshot(&snap());
        let samples = parse_samples(&text);
        let get = |n: &str| samples.iter().find(|s| s.name == n).unwrap();
        assert_eq!(get("gensor_test_hits_total").value, 42.0);
        assert_eq!(get("gensor_test_inflight").value, -1.0);
        assert_eq!(get("gensor_test_latency_us_sum").value, 12_345.0);
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "gensor_test_latency_us_bucket")
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[1].labels, "le=\"100\"");
        assert_eq!(buckets[1].value, 3.0);
        // Cumulative buckets never decrease.
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    }

    #[test]
    fn json_rendering_is_byte_stable_against_the_golden_form() {
        let fixture = snap();
        let golden = "{\"metrics\":[\n  \
            {\"name\":\"gensor_test_hits_total\",\"type\":\"counter\",\"value\":42,\"help\":\"cache hits\"},\n  \
            {\"name\":\"gensor_test_inflight\",\"type\":\"gauge\",\"value\":-1,\"help\":\"jobs in flight\"},\n  \
            {\"name\":\"gensor_test_latency_us\",\"type\":\"histogram\",\"count\":4,\"sum_us\":12345,\"p50_us\":100,\"p99_us\":200,\"help\":\"latency\"}\n\
            ]}\n";
        assert_eq!(render_json_snapshot(&fixture), golden);
        assert_eq!(
            render_json_snapshot(&fixture),
            render_json_snapshot(&snap())
        );
    }

    #[test]
    fn json_rendering_escapes_help_text() {
        let snap = vec![MetricSnapshot {
            name: "gensor_test_x".into(),
            help: "line\none \"two\"".into(),
            value: MetricValue::Counter(0),
        }];
        let text = render_json_snapshot(&snap);
        assert!(text.contains("line\\none \\\"two\\\""), "{text}");
    }

    #[test]
    fn parser_skips_comments_and_garbage() {
        let samples = parse_samples("# HELP x y\n\nnot a sample\nok_total 3\n");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "ok_total");
    }
}
