//! The process-global metrics registry: counters, gauges, and fixed-bucket
//! microsecond histograms, keyed by Prometheus-style names
//! (`gensor_<crate>_<name>`, DESIGN §10).
//!
//! Registration is get-or-create: the first `counter("x", help)` call
//! creates the metric, later calls return the same handle. Callers on hot
//! paths cache the `Arc` in a `OnceLock` (the `counter_inc!` /
//! `counter_add!` / `histogram_record_us!` macros do this), so steady-state
//! cost is one relaxed atomic op — registration never sits on a hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, microseconds (log-spaced ~2.5×), shared
/// with `served`'s wire histogram so daemon and process views agree; an
/// implicit overflow bucket catches everything slower than 10 s.
pub const BUCKET_BOUNDS_US: [u64; 17] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// Wait-free fixed-bucket microsecond histogram: recording is two relaxed
/// atomic adds; quantiles are answered as the containing bucket's upper
/// bound (the overflow bucket reports 2× the last bound).
pub struct Histogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation of `us` microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` ∈ [0, 1];
    /// 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(2 * BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            }
        }
        2 * BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    handle: Handle,
}

fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn get_or_register<T, F, G>(name: &str, help: &str, make: F, extract: G) -> Arc<T>
where
    F: FnOnce() -> Handle,
    G: FnOnce(&Handle) -> Option<Arc<T>>,
{
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let entry = reg.entry(name.to_string()).or_insert_with(|| Entry {
        help: help.to_string(),
        handle: make(),
    });
    extract(&entry.handle).unwrap_or_else(|| {
        panic!(
            "metric '{name}' already registered as a {}",
            entry.handle.kind()
        )
    })
}

/// Get or register the counter `name`.
pub fn counter(name: &str, help: &str) -> Arc<Counter> {
    get_or_register(
        name,
        help,
        || Handle::Counter(Arc::new(Counter::default())),
        |h| match h {
            Handle::Counter(c) => Some(c.clone()),
            _ => None,
        },
    )
}

/// Get or register the gauge `name`.
pub fn gauge(name: &str, help: &str) -> Arc<Gauge> {
    get_or_register(
        name,
        help,
        || Handle::Gauge(Arc::new(Gauge::default())),
        |h| match h {
            Handle::Gauge(g) => Some(g.clone()),
            _ => None,
        },
    )
}

/// Get or register the microsecond histogram `name`.
pub fn histogram_us(name: &str, help: &str) -> Arc<Histogram> {
    get_or_register(
        name,
        help,
        || Handle::Histogram(Arc::new(Histogram::default())),
        |h| match h {
            Handle::Histogram(h) => Some(h.clone()),
            _ => None,
        },
    )
}

/// A metric's point-in-time value, for exporters.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram: cumulative `(le_us, count)` rows (overflow row has
    /// `le_us = u64::MAX`), total sum in µs, and observation count.
    Histogram {
        /// Cumulative bucket rows.
        cumulative: Vec<(u64, u64)>,
        /// Σ observations, µs.
        sum_us: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One registered metric's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name (`gensor_<crate>_<name>`).
    pub name: String,
    /// Help text from registration.
    pub help: String,
    /// Current value.
    pub value: MetricValue,
}

/// Snapshot every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    reg.iter()
        .map(|(name, e)| {
            let value = match &e.handle {
                Handle::Counter(c) => MetricValue::Counter(c.get()),
                Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                Handle::Histogram(h) => {
                    let mut cumulative = Vec::with_capacity(BUCKET_BOUNDS_US.len() + 1);
                    let mut acc = 0;
                    for (i, c) in h.bucket_counts().into_iter().enumerate() {
                        acc += c;
                        let le = BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX);
                        cumulative.push((le, acc));
                    }
                    MetricValue::Histogram {
                        cumulative,
                        sum_us: h.sum_us(),
                        count: h.count(),
                    }
                }
            };
            MetricSnapshot {
                name: name.clone(),
                help: e.help.clone(),
                value,
            }
        })
        .collect()
}

/// Quantile over cumulative `(le_us, count)` histogram rows (the
/// [`MetricValue::Histogram`] shape, also what the Prometheus parser
/// reconstructs): the upper bound of the bucket containing rank
/// `ceil(q·count)`, 0 when empty. Shared by the flight recorder and the
/// fleet metrics aggregator so single-process and merged quantiles agree.
pub fn quantile_from_cumulative(cumulative: &[(u64, u64)], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    // The overflow bucket has no upper bound; report 2× the last finite
    // bound *of this cumulative* (a parsed scrape may carry a different
    // ladder than the live registry's).
    let overflow = 2 * cumulative
        .iter()
        .rev()
        .find(|(le, _)| *le != u64::MAX)
        .map(|(le, _)| *le)
        .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
    for (le, acc) in cumulative {
        if *acc >= rank {
            return if *le == u64::MAX { overflow } else { *le };
        }
    }
    overflow
}

/// Zero every registered metric (names and handles survive). Test-only
/// escape hatch: the registry is process-global, and tests asserting exact
/// values need a known baseline.
#[doc(hidden)]
pub fn reset_all() {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    for e in reg.values() {
        match &e.handle {
            Handle::Counter(c) => {
                c.0.store(0, Ordering::Relaxed);
            }
            Handle::Gauge(g) => {
                g.0.store(0, Ordering::Relaxed);
            }
            Handle::Histogram(h) => {
                for c in &h.counts {
                    c.store(0, Ordering::Relaxed);
                }
                h.sum_us.store(0, Ordering::Relaxed);
                h.total.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let a = counter("obs_test_shared_total", "test");
        let b = counter("obs_test_shared_total", "test");
        let before = a.get();
        b.inc();
        b.add(2);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let g = gauge("obs_test_gauge", "test");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_quantiles_match_serveds_semantics() {
        let h = histogram_us("obs_test_hist_us", "test");
        for _ in 0..98 {
            h.record_us(80);
        }
        h.record_us(40_000);
        h.record_us(20_000_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert_eq!(h.quantile_us(0.99), 50_000);
        assert_eq!(h.quantile_us(1.0), 20_000_000);
        assert_eq!(h.sum_us(), 98 * 80 + 40_000 + 20_000_000);
    }

    #[test]
    fn cumulative_quantiles_match_the_live_histogram() {
        let h = histogram_us("obs_test_cumulative_q_us", "test");
        for _ in 0..98 {
            h.record_us(80);
        }
        h.record_us(40_000);
        h.record_us(20_000_000);
        let mut cumulative = Vec::new();
        let mut acc = 0;
        for (i, c) in h.bucket_counts().into_iter().enumerate() {
            acc += c;
            cumulative.push((BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX), acc));
        }
        for q in [0.5, 0.99, 1.0] {
            assert_eq!(
                quantile_from_cumulative(&cumulative, h.count(), q),
                h.quantile_us(q),
                "q={q}"
            );
        }
        assert_eq!(quantile_from_cumulative(&[], 0, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        counter("obs_test_clash", "test");
        gauge("obs_test_clash", "test");
    }

    #[test]
    fn snapshot_is_sorted_and_carries_help() {
        counter("obs_test_zz_total", "the zz counter");
        counter("obs_test_aa_total", "the aa counter");
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let aa = snap.iter().find(|m| m.name == "obs_test_aa_total").unwrap();
        assert_eq!(aa.help, "the aa counter");
    }
}
