//! `obs` — the workspace's zero-dependency tracing + metrics core.
//!
//! Three pieces (DESIGN §10):
//!
//! * **Spans & events** — hierarchical [`Span`]s (`tune` → `walk` →
//!   `verify` → `codegen.emit`) and instantaneous points (`walk.step`)
//!   with structured key/value fields, recorded through one pluggable
//!   process-global [`Collector`] ([`RingCollector`] in memory,
//!   [`JsonlCollector`] to disk, or none). With no collector installed the
//!   `span!`/`event!`/`log!` macros cost one relaxed atomic load and
//!   evaluate none of their field expressions.
//! * **Metrics** — a global registry of [`Counter`]s, [`Gauge`]s and
//!   µs-bucket [`Histogram`]s named `gensor_<crate>_<name>`, unifying the
//!   cache, daemon, and verifier statistics.
//! * **Exporters** — [`chrome::trace_json`] (Perfetto/chrome://tracing,
//!   with [`chrome::trace_json_multi`] merging several processes' rings
//!   into one view), [`prometheus::render`] (text exposition), and
//!   [`convergence::walk_csv`] (the paper's Fig. 8 convergence traces).
//!
//! Two distributed-plane pieces sit on top: [`trace::TraceContext`] (the
//! two-integer identity a request carries across process hops) and
//! [`flight::FlightRecorder`] (the always-on ring every daemon dumps to a
//! JSONL sidecar on panic, failpoint trip, `SIGUSR1`, or drain).
//!
//! The crate is std-only so every other crate can depend on it without
//! dragging the shim graph along.

pub mod chrome;
mod collector;
pub mod convergence;
mod event;
pub mod flight;
pub(crate) mod json;
pub mod metrics;
pub mod prometheus;
pub mod trace;

pub use collector::{
    emit_log, install, log_enabled, record, record_point, render_jsonl, tracing_enabled, uninstall,
    Collector, JsonlCollector, RingCollector, Span,
};
pub use event::{current_tid, intern_name, now_us, Event, EventKind, Level, Value};
pub use flight::FlightRecorder;
pub use metrics::{counter, gauge, histogram_us, Counter, Gauge, Histogram};
pub use trace::TraceContext;

/// Open a span: `let _sp = span!("tune", op = op.label(), chains = 4u64);`
///
/// Returns a [`Span`] guard that closes on drop. Field expressions are
/// evaluated only when tracing is enabled; field keys become the literal
/// identifier names.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::Span::enter(
                $name,
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::Span::disabled($name)
        }
    };
}

/// Record an instantaneous point event:
/// `event!("walk.step", step = 3u64, accepted = true);`
///
/// Field expressions are evaluated only when tracing is enabled.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::tracing_enabled() {
            $crate::record_point(
                $name,
                vec![$((stringify!($k), $crate::Value::from($v))),*],
            );
        }
    };
}

/// Leveled logging for library crates: `log!(Warn, "could not persist {p}")`.
///
/// Routed through the collector when tracing; `Warn`/`Error` fall back to
/// stderr otherwise; `Debug`/`Info` are dropped when nothing collects. The
/// format arguments are evaluated only when the line will be observed.
#[macro_export]
macro_rules! log {
    ($level:ident, $($fmt:tt)*) => {
        if $crate::log_enabled($crate::Level::$level) {
            $crate::emit_log($crate::Level::$level, format!($($fmt)*));
        }
    };
}

/// Bump a cached global counter by 1. The `Arc` handle is registered once
/// per call site and cached in a `OnceLock`, so the steady-state cost is
/// one relaxed atomic add.
#[macro_export]
macro_rules! counter_inc {
    ($name:expr, $help:expr) => {{
        static __C: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        __C.get_or_init(|| $crate::counter($name, $help)).inc();
    }};
}

/// Bump a cached global counter by `n` (see [`counter_inc!`]).
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $help:expr, $n:expr) => {{
        static __C: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        __C.get_or_init(|| $crate::counter($name, $help)).add($n);
    }};
}

/// Record `us` into a cached global microsecond histogram (see
/// [`counter_inc!`] for the caching scheme).
#[macro_export]
macro_rules! histogram_record_us {
    ($name:expr, $help:expr, $us:expr) => {{
        static __H: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        __H.get_or_init(|| $crate::histogram_us($name, $help))
            .record_us($us);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Serialize with the collector tests in `collector.rs`: both mutate
    // the process-global collector slot.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: std::sync::Mutex<()> = std::sync::Mutex::new(());
        L.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn macros_evaluate_fields_lazily() {
        let _g = lock();
        let mut evaluated = false;
        {
            let _sp = span!(
                "lazy",
                x = {
                    evaluated = true;
                    1u64
                }
            );
        }
        event!(
            "lazy.point",
            y = {
                evaluated = true;
                2u64
            }
        );
        log!(Info, "{}", {
            evaluated = true;
            "never"
        });
        assert!(!evaluated, "disabled macros must not evaluate fields");
    }

    #[test]
    fn macros_record_through_an_installed_collector() {
        let _g = lock();
        let ring = Arc::new(RingCollector::new(16));
        install(ring.clone());
        {
            let sp = span!("outer", op = "gemm");
            assert!(sp.id() > 0);
            event!("outer.tick", n = 1u64);
            log!(Debug, "dbg {}", 42);
        }
        uninstall();
        let evs = ring.events();
        assert_eq!(evs.len(), 4, "{evs:?}");
        assert_eq!(evs[0].field("op"), Some(&Value::Str("gemm".into())));
        assert!(matches!(
            &evs[2].kind,
            EventKind::Log {
                level: Level::Debug,
                ..
            }
        ));
    }

    #[test]
    fn metric_macros_register_and_accumulate() {
        counter_inc!("obs_lib_test_total", "test counter");
        counter_add!("obs_lib_test_total", "test counter", 4);
        assert!(counter("obs_lib_test_total", "test counter").get() >= 5);
        histogram_record_us!("obs_lib_test_us", "test histogram", 75);
        assert!(histogram_us("obs_lib_test_us", "test histogram").count() >= 1);
    }
}
