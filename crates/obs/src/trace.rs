//! Cross-process trace identity.
//!
//! A [`TraceContext`] names one logical operation as it crosses process
//! boundaries: the client mints a context (`trace_id` unique per
//! operation), every wire hop carries it, and each process stamps the
//! context's `trace_id` onto the spans it opens on that operation's
//! behalf. Exporters then merge per-process event streams into one
//! Perfetto view where every span of the operation shares a single
//! `trace` argument — the distributed-tracing contract without a wire
//! format heavier than two integers.
//!
//! The context is explicit, not ambient: there is no thread-local
//! "current trace" that instrumentation reads behind the caller's back.
//! The hop sites that forward work (the fabric router, the serve
//! client/daemon) thread the context by hand, which keeps the disabled
//! path at zero cost and the propagation auditable.

use std::sync::atomic::{AtomicU64, Ordering};

/// The identity one distributed operation carries across hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Process-transcending operation id; every span of the operation,
    /// in every process, carries this value in its `trace` field.
    pub trace_id: u64,
    /// The span (by process-local span id) that caused this hop; 0 at
    /// the root. Lets viewers order hops without synchronized clocks.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Mint a fresh root context with a unique non-zero `trace_id`.
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: next_trace_id(),
            parent_span_id: 0,
        }
    }

    /// The context a child hop should carry: same trace, parented at
    /// `span_id` (the local span doing the forwarding).
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span_id: span_id,
        }
    }

    /// The `trace_id` as the 16-hex-digit string viewers display.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// fmix64 (MurmurHash3 finalizer): a cheap bijective scrambler.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    h
}

/// Unique non-zero trace ids: wall-clock nanos × pid seed a process
/// stream, a counter separates mints within one nanosecond tick.
fn next_trace_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seed = nanos ^ ((std::process::id() as u64) << 32);
    let id = fmix64(seed.wrapping_add(SEQ.fetch_add(1, Ordering::Relaxed)));
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_contexts_are_unique_roots() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.parent_span_id, 0);
    }

    #[test]
    fn child_keeps_the_trace_and_moves_the_parent() {
        let root = TraceContext::mint();
        let hop = root.child(42);
        assert_eq!(hop.trace_id, root.trace_id);
        assert_eq!(hop.parent_span_id, 42);
    }

    #[test]
    fn trace_hex_is_sixteen_digits() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef,
            parent_span_id: 0,
        };
        assert_eq!(ctx.trace_hex(), "00000000deadbeef");
    }
}
