//! The always-on flight recorder: a bounded in-memory ring of recent
//! events plus a metric snapshot, dumped to a timestamped JSONL sidecar
//! when something goes wrong.
//!
//! A daemon installs one recorder at startup ([`FlightRecorder::install`]
//! makes its ring the process collector, so every span/event/log flows in
//! at `RingCollector` cost) and then forgets about it. On a panic, a
//! failpoint trip, `SIGUSR1`, or drain, [`dump`] writes
//! `flight-<tag>-<secs>-<seq>.jsonl`:
//!
//! ```text
//! {"flight":"7601","reason":"crash","seq":0,"ts_us":…,"events":314}
//! {"ts_us":…,"tid":2,"ph":"B","name":"serve.request",…}   ← ring, oldest first
//! …
//! {"metric":"gensor_serve_queue_us","type":"histogram","count":…,…}
//! ```
//!
//! Dumps are throttled (at most one per second) so a failpoint armed with
//! a high-frequency policy cannot fill the disk, and the panic hook
//! chains the previous hook so backtraces still print.

use crate::collector::{render_jsonl, Collector, RingCollector};
use crate::event::{now_us, Event};
use crate::metrics::{self, MetricValue};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Minimum microseconds between two throttled dumps.
const DUMP_MIN_GAP_US: u64 = 1_000_000;

/// The process flight recorder (see the module docs).
pub struct FlightRecorder {
    ring: Arc<RingCollector>,
    dir: PathBuf,
    tag: String,
    seq: AtomicU64,
    /// `now_us` of the last throttled dump; `u64::MAX` = never dumped.
    last_dump_us: AtomicU64,
}

static FLIGHT: RwLock<Option<Arc<FlightRecorder>>> = RwLock::new(None);

impl FlightRecorder {
    /// Build a recorder without touching process-global state (tests).
    pub fn new(dir: impl AsRef<Path>, cap: usize, tag: &str) -> FlightRecorder {
        FlightRecorder {
            ring: Arc::new(RingCollector::new(cap)),
            dir: dir.as_ref().to_path_buf(),
            tag: tag.to_string(),
            seq: AtomicU64::new(0),
            last_dump_us: AtomicU64::new(u64::MAX),
        }
    }

    /// Install a recorder process-wide: its ring becomes the collector
    /// (tracing on), the panic hook dumps it, and [`dump`] finds it.
    pub fn install(dir: impl AsRef<Path>, cap: usize, tag: &str) -> Arc<FlightRecorder> {
        let rec = Arc::new(FlightRecorder::new(dir, cap, tag));
        crate::install(rec.ring.clone() as Arc<dyn Collector>);
        install_panic_hook();
        let mut slot = FLIGHT.write().unwrap_or_else(|p| p.into_inner());
        *slot = Some(rec.clone());
        rec
    }

    /// The recorder's ring (the `TraceDump` frame answers from it).
    pub fn ring(&self) -> Arc<RingCollector> {
        self.ring.clone()
    }

    /// The recorder's tag (a daemon uses its listen port).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring.events()
    }

    /// Write the ring plus a metric snapshot to a fresh sidecar file,
    /// returning its path.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        std::fs::create_dir_all(&self.dir)?;
        let path = self
            .dir
            .join(format!("flight-{}-{secs}-{seq}.jsonl", self.tag));
        let events = self.ring.events();
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(
            w,
            "{{\"flight\":{},\"reason\":{},\"seq\":{seq},\"ts_us\":{},\"events\":{}}}",
            crate::json::string(&self.tag),
            crate::json::string(reason),
            now_us(),
            events.len()
        )?;
        for ev in &events {
            writeln!(w, "{}", render_jsonl(ev))?;
        }
        for m in metrics::snapshot() {
            writeln!(w, "{}", render_metric_line(&m.name, &m.value))?;
        }
        w.flush()?;
        Ok(path)
    }

    /// [`dump`], rate-limited to one per second. `None` when throttled
    /// (or when the write failed — the recorder never propagates errors
    /// into a crashing process's unwind path).
    pub fn dump_throttled(&self, reason: &str) -> Option<PathBuf> {
        let now = now_us();
        let last = self.last_dump_us.load(Ordering::SeqCst);
        if last != u64::MAX && now.saturating_sub(last) < DUMP_MIN_GAP_US {
            return None;
        }
        if self
            .last_dump_us
            .compare_exchange(last, now, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return None; // another thread is dumping this second
        }
        self.dump(reason).ok()
    }
}

fn render_metric_line(name: &str, value: &MetricValue) -> String {
    match value {
        MetricValue::Counter(v) => format!(
            "{{\"metric\":{},\"type\":\"counter\",\"value\":{v}}}",
            crate::json::string(name)
        ),
        MetricValue::Gauge(v) => format!(
            "{{\"metric\":{},\"type\":\"gauge\",\"value\":{v}}}",
            crate::json::string(name)
        ),
        MetricValue::Histogram {
            cumulative,
            sum_us,
            count,
        } => format!(
            "{{\"metric\":{},\"type\":\"histogram\",\"count\":{count},\"sum_us\":{sum_us},\
             \"p50_us\":{},\"p99_us\":{}}}",
            crate::json::string(name),
            metrics::quantile_from_cumulative(cumulative, *count, 0.50),
            metrics::quantile_from_cumulative(cumulative, *count, 0.99),
        ),
    }
}

/// Remove the installed recorder (tests): clears the global slot and
/// the collector. The panic hook stays chained but becomes a no-op —
/// it looks the recorder up through this slot at panic time.
pub fn uninstall() {
    let mut slot = FLIGHT.write().unwrap_or_else(|p| p.into_inner());
    if slot.take().is_some() {
        crate::uninstall();
    }
}

/// The installed recorder, if any.
pub fn installed() -> Option<Arc<FlightRecorder>> {
    FLIGHT
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .cloned()
}

/// Throttled dump of the installed recorder; `None` when none is
/// installed, the throttle holds, or the write failed.
pub fn dump(reason: &str) -> Option<PathBuf> {
    installed().and_then(|rec| rec.dump_throttled(reason))
}

/// Chain a panic hook that dumps the flight recorder before the default
/// hook prints the backtrace. Installed once per process.
fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump("panic");
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn point(i: u64) -> Event {
        Event {
            ts_us: i,
            tid: 1,
            kind: EventKind::Point { name: "tick" },
            fields: vec![("i", Value::U64(i))],
        }
    }

    #[test]
    fn dump_writes_header_events_and_metrics() {
        let dir = temp_dir("dump");
        let rec = FlightRecorder::new(&dir, 8, "t1");
        for i in 0..3 {
            rec.ring.record(point(i));
        }
        crate::counter("obs_flight_test_total", "test").inc();
        let path = rec.dump("unit-test").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"flight\":\"t1\""), "{}", lines[0]);
        assert!(lines[0].contains("\"reason\":\"unit-test\""));
        assert!(lines[0].contains("\"events\":3"));
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"ph\":\"i\"")).count(),
            3
        );
        assert!(
            text.contains("\"metric\":\"obs_flight_test_total\",\"type\":\"counter\""),
            "{text}"
        );
        // Every line is a JSON object (brace-delimited, no trailing junk).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn throttle_allows_the_first_dump_and_blocks_the_burst() {
        let dir = temp_dir("throttle");
        let rec = FlightRecorder::new(&dir, 8, "t2");
        rec.ring.record(point(0));
        assert!(rec.dump_throttled("first").is_some());
        assert!(rec.dump_throttled("burst").is_none(), "within the gap");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_dumps_get_distinct_paths() {
        let dir = temp_dir("seq");
        let rec = FlightRecorder::new(&dir, 8, "t3");
        let a = rec.dump("a").unwrap();
        let b = rec.dump("b").unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
