//! The pluggable collector and the global recording switch.
//!
//! Exactly one collector is installed process-wide at a time. The hot-path
//! contract is *pay-for-what-you-use*: with no collector installed,
//! `tracing_enabled()` is a single relaxed atomic load, and the `span!` /
//! `event!` macros evaluate none of their field expressions. Installing a
//! collector flips the switch; every subsequent event flows through
//! [`Collector::record`].

use crate::event::{current_tid, now_us, Event, EventKind, Level, Value};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A sink for [`Event`]s. Implementations must be cheap and non-blocking
/// enough to sit on the tuner's hot path.
pub trait Collector: Send + Sync {
    /// Record one event.
    fn record(&self, ev: Event);
    /// Flush any buffered output (file collectors).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Install `c` as the process-wide collector and enable tracing.
pub fn install(c: Arc<dyn Collector>) {
    let mut slot = COLLECTOR.write().unwrap_or_else(|p| p.into_inner());
    *slot = Some(c);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable tracing and remove the collector, returning it (flushed).
pub fn uninstall() -> Option<Arc<dyn Collector>> {
    ENABLED.store(false, Ordering::SeqCst);
    let taken = COLLECTOR.write().unwrap_or_else(|p| p.into_inner()).take();
    if let Some(c) = &taken {
        c.flush();
    }
    taken
}

/// Whether a collector is installed. The one branch every disabled-path
/// macro pays.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record a fully-formed event (no-op when no collector is installed).
pub fn record(ev: Event) {
    let guard = COLLECTOR.read().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = guard.as_ref() {
        c.record(ev);
    }
}

/// Record an instantaneous [`EventKind::Point`] marker. Called by the
/// `event!` macro, which has already checked [`tracing_enabled`].
pub fn record_point(name: &'static str, fields: Vec<(&'static str, Value)>) {
    record(Event {
        ts_us: now_us(),
        tid: current_tid(),
        kind: EventKind::Point { name },
        fields,
    });
}

/// Whether a `log!` at `level` would be observed anywhere: through the
/// collector when tracing, or on stderr for `Warn`/`Error` otherwise.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    tracing_enabled() || level >= Level::Warn
}

/// Route one formatted log line: to the collector when tracing, else to
/// stderr for `Warn`/`Error` (so library crates never print directly).
pub fn emit_log(level: Level, message: String) {
    if tracing_enabled() {
        record(Event {
            ts_us: now_us(),
            tid: current_tid(),
            kind: EventKind::Log { level, message },
            fields: Vec::new(),
        });
    } else if level >= Level::Warn {
        eprintln!("[{}] {message}", level.as_str());
    }
}

/// An RAII span guard: records `Begin` on construction and `End` on drop.
/// Disabled spans (no collector at entry) carry id 0 and record nothing.
#[must_use = "a span closes when dropped; binding to _ closes it immediately"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    id: u64,
}

impl Span {
    /// Open a span. Called by the `span!` macro after its enabled check;
    /// re-checks so direct callers are also safe.
    pub fn enter(name: &'static str, mut fields: Vec<(&'static str, Value)>) -> Span {
        if !tracing_enabled() {
            return Span::disabled(name);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        fields.push(("span", Value::U64(id)));
        record(Event {
            ts_us: now_us(),
            tid: current_tid(),
            kind: EventKind::Begin { name },
            fields,
        });
        Span { name, id }
    }

    /// The no-op span the `span!` macro returns when tracing is off.
    pub fn disabled(name: &'static str) -> Span {
        Span { name, id: 0 }
    }

    /// Process-unique span id; 0 when the span is disabled. Point events
    /// reference it (e.g. `walk.step` carries `walk = span.id()`).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        record(Event {
            ts_us: now_us(),
            tid: current_tid(),
            kind: EventKind::End { name: self.name },
            fields: vec![("span", Value::U64(self.id))],
        });
    }
}

/// In-process ring buffer: keeps the newest `cap` events, dropping the
/// oldest on overflow. The `gensor trace` collector.
pub struct RingCollector {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingCollector {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> RingCollector {
        RingCollector {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drain the buffer, returning the events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Collector for RingCollector {
    fn record(&self, ev: Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(ev);
    }
}

/// Streams events to a file as JSON Lines, one event per line — the
/// durable collector for long daemon runs.
pub struct JsonlCollector {
    w: Mutex<BufWriter<File>>,
}

impl JsonlCollector {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlCollector> {
        Ok(JsonlCollector {
            w: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

/// One event as a JSONL line (the [`JsonlCollector`] format; the flight
/// recorder writes the same lines into its dump sidecars).
pub fn render_jsonl(ev: &Event) -> String {
    let mut s = String::with_capacity(128);
    s.push_str("{\"ts_us\":");
    s.push_str(&ev.ts_us.to_string());
    s.push_str(",\"tid\":");
    s.push_str(&ev.tid.to_string());
    match &ev.kind {
        EventKind::Begin { name } => {
            s.push_str(",\"ph\":\"B\",\"name\":");
            s.push_str(&crate::json::string(name));
        }
        EventKind::End { name } => {
            s.push_str(",\"ph\":\"E\",\"name\":");
            s.push_str(&crate::json::string(name));
        }
        EventKind::Point { name } => {
            s.push_str(",\"ph\":\"i\",\"name\":");
            s.push_str(&crate::json::string(name));
        }
        EventKind::Log { level, message } => {
            s.push_str(",\"ph\":\"log\",\"level\":");
            s.push_str(&crate::json::string(level.as_str()));
            s.push_str(",\"message\":");
            s.push_str(&crate::json::string(message));
        }
    }
    if !ev.fields.is_empty() {
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&crate::json::string(k));
            s.push(':');
            s.push_str(&crate::json::value(v));
        }
        s.push('}');
    }
    s.push('}');
    s
}

impl Collector for JsonlCollector {
    fn record(&self, ev: Event) {
        let line = render_jsonl(&ev);
        let mut w = self.w.lock().unwrap_or_else(|p| p.into_inner());
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.w.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector slot is process-global; tests that install one
    // serialize on this lock so `cargo test`'s parallel runner cannot
    // interleave them.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing_and_has_id_zero() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!tracing_enabled());
        let sp = Span::enter("quiet", Vec::new());
        assert_eq!(sp.id(), 0);
        drop(sp);
    }

    #[test]
    fn ring_collector_captures_nested_spans() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let ring = Arc::new(RingCollector::new(64));
        install(ring.clone());
        {
            let outer = Span::enter("outer", vec![("k", Value::U64(7))]);
            assert!(outer.id() > 0);
            let _inner = Span::enter("inner", Vec::new());
            record_point("tick", vec![("outer", Value::U64(outer.id()))]);
        }
        uninstall();
        let evs = ring.events();
        assert_eq!(evs.len(), 5, "{evs:?}");
        assert!(matches!(evs[0].kind, EventKind::Begin { name: "outer" }));
        assert!(matches!(evs[1].kind, EventKind::Begin { name: "inner" }));
        assert!(matches!(evs[2].kind, EventKind::Point { name: "tick" }));
        // Drop order closes inner before outer.
        assert!(matches!(evs[3].kind, EventKind::End { name: "inner" }));
        assert!(matches!(evs[4].kind, EventKind::End { name: "outer" }));
        assert_eq!(evs[0].field("k"), Some(&Value::U64(7)));
        // Nothing leaks after uninstall.
        record_point("after", Vec::new());
        assert_eq!(ring.len(), 5);
    }

    #[test]
    fn ring_drops_oldest_on_overflow() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let ring = Arc::new(RingCollector::new(3));
        install(ring.clone());
        for i in 0..10u64 {
            record_point("n", vec![("i", Value::U64(i))]);
        }
        uninstall();
        let evs = ring.take();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].field("i"), Some(&Value::U64(7)));
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_collector_writes_one_line_per_event() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let path = std::env::temp_dir().join(format!("obs-jsonl-{}.jsonl", std::process::id()));
        let jsonl = Arc::new(JsonlCollector::create(&path).unwrap());
        install(jsonl);
        {
            let _sp = Span::enter("io", vec![("file", Value::Str("x\"y".into()))]);
            emit_log(Level::Warn, "watch \"out\"".into());
        }
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"ph\":\"B\""));
        assert!(lines[0].contains("x\\\"y"));
        assert!(lines[1].contains("\"level\":\"warn\""));
        assert!(lines[2].contains("\"ph\":\"E\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn log_levels_gate_without_a_collector() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(!log_enabled(Level::Debug));
        assert!(!log_enabled(Level::Info));
        assert!(log_enabled(Level::Warn));
        assert!(log_enabled(Level::Error));
        let ring = Arc::new(RingCollector::new(8));
        install(ring.clone());
        assert!(log_enabled(Level::Debug));
        emit_log(Level::Info, "hello".into());
        uninstall();
        assert_eq!(ring.len(), 1);
    }
}
