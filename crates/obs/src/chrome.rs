//! Chrome `trace_event` exporter: renders a recorded event stream as a
//! JSON object loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Span Begin/End pairs become complete (`"ph":"X"`) events with explicit
//! durations — more robust in viewers than raw B/E pairs — reconstructed
//! with one stack per thread. Point markers and log lines become instant
//! (`"ph":"i"`) events. The exporter is total: unmatched Begins (a walk
//! still running when the ring was snapshotted) are closed at the last
//! observed timestamp rather than dropped.

use crate::event::{Event, EventKind, Value};
use crate::json;

struct Open<'a> {
    name: &'static str,
    ts_us: u64,
    fields: &'a [(&'static str, Value)],
}

fn args_json(fields: &[(&'static str, Value)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&json::string(k));
        s.push(':');
        s.push_str(&json::value(v));
    }
    s.push('}');
    s
}

fn complete_event(pid: u64, tid: u64, name: &str, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"gensor\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"dur\":{dur_us},\"args\":{args}}}",
        json::string(name)
    )
}

fn instant_event(pid: u64, tid: u64, name: &str, ts_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":{},\"cat\":\"gensor\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us},\"args\":{args}}}",
        json::string(name)
    )
}

/// One process's event stream in a merged multi-process trace.
pub struct TraceProcess<'a> {
    /// Chrome `pid` for this stream (pick any distinct small integer).
    pub pid: u64,
    /// Process name shown in the viewer's track header (e.g. the peer's
    /// endpoint).
    pub name: String,
    /// The stream, in record order.
    pub events: &'a [Event],
}

fn render_part(pid: u64, events: &[Event], out: &mut Vec<String>) {
    let last_ts = events.iter().map(|e| e.ts_us).max().unwrap_or(0);
    // One open-span stack per thread; spans never migrate threads.
    let mut stacks: std::collections::BTreeMap<u64, Vec<Open>> = std::collections::BTreeMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::Begin { name } => {
                stacks.entry(ev.tid).or_default().push(Open {
                    name,
                    ts_us: ev.ts_us,
                    fields: &ev.fields,
                });
            }
            EventKind::End { name } => {
                let stack = stacks.entry(ev.tid).or_default();
                // Well-nested in practice; if the ring dropped the matching
                // Begin, ignore the orphan End rather than mispairing.
                if let Some(pos) = stack.iter().rposition(|o| o.name == *name) {
                    let open = stack.remove(pos);
                    out.push(complete_event(
                        pid,
                        ev.tid,
                        open.name,
                        open.ts_us,
                        ev.ts_us.saturating_sub(open.ts_us),
                        &args_json(open.fields),
                    ));
                }
            }
            EventKind::Point { name } => {
                out.push(instant_event(
                    pid,
                    ev.tid,
                    name,
                    ev.ts_us,
                    &args_json(&ev.fields),
                ));
            }
            EventKind::Log { level, message } => {
                let fields = vec![
                    ("level", Value::Str(level.as_str().to_string())),
                    ("message", Value::Str(message.clone())),
                ];
                out.push(instant_event(
                    pid,
                    ev.tid,
                    "log",
                    ev.ts_us,
                    &args_json(&fields),
                ));
            }
        }
    }
    // Close spans still open at snapshot time at the last timestamp.
    for (tid, stack) in stacks {
        for open in stack {
            out.push(complete_event(
                pid,
                tid,
                open.name,
                open.ts_us,
                last_ts.saturating_sub(open.ts_us),
                &args_json(open.fields),
            ));
        }
    }
}

fn finish_doc(out: Vec<String>) -> String {
    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    doc
}

/// Render `events` (in record order) as a Chrome trace JSON document.
pub fn trace_json(events: &[Event]) -> String {
    let mut out: Vec<String> = Vec::with_capacity(events.len());
    render_part(1, events, &mut out);
    finish_doc(out)
}

/// Merge several processes' event streams (the local client ring plus
/// each peer's `TraceDump`) into one Chrome trace document: every part
/// gets its own `pid` and a `process_name` metadata row, so Perfetto
/// shows one aligned timeline per process. Timestamps stay in each
/// process's own epoch — hop ordering comes from the `trace` /
/// `parent` span arguments, not from clock alignment.
pub fn trace_json_multi(parts: &[TraceProcess<'_>]) -> String {
    let mut out: Vec<String> = Vec::new();
    for part in parts {
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":{}}}}}",
            part.pid,
            json::string(&part.name)
        ));
        render_part(part.pid, part.events, &mut out);
    }
    finish_doc(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, Value};

    fn ev(ts_us: u64, tid: u64, kind: EventKind) -> Event {
        Event {
            ts_us,
            tid,
            kind,
            fields: Vec::new(),
        }
    }

    #[test]
    fn begin_end_pairs_become_complete_events() {
        let events = vec![
            Event {
                ts_us: 10,
                tid: 1,
                kind: EventKind::Begin { name: "tune" },
                fields: vec![("op", Value::Str("gemm".into())), ("span", Value::U64(1))],
            },
            ev(20, 1, EventKind::Begin { name: "verify" }),
            ev(30, 1, EventKind::End { name: "verify" }),
            ev(50, 1, EventKind::End { name: "tune" }),
        ];
        let doc = trace_json(&events);
        assert!(doc.contains("\"name\":\"verify\",\"cat\":\"gensor\",\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":20,\"dur\":10"));
        assert!(doc.contains("\"ts\":10,\"dur\":40"));
        assert!(doc.contains("\"op\":\"gemm\""));
        assert!(doc.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn unmatched_begin_is_closed_at_last_timestamp() {
        let events = vec![
            ev(5, 2, EventKind::Begin { name: "walk" }),
            ev(95, 2, EventKind::Point { name: "walk.step" }),
        ];
        let doc = trace_json(&events);
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ts\":5,\"dur\":90"));
    }

    #[test]
    fn orphan_end_is_dropped_not_mispaired() {
        let events = vec![
            ev(5, 1, EventKind::End { name: "ghost" }),
            ev(6, 1, EventKind::Begin { name: "real" }),
            ev(9, 1, EventKind::End { name: "real" }),
        ];
        let doc = trace_json(&events);
        assert!(!doc.contains("ghost"));
        assert!(doc.contains("\"name\":\"real\""));
    }

    #[test]
    fn logs_become_instants_with_message_args() {
        let events = vec![ev(
            1,
            1,
            EventKind::Log {
                level: crate::Level::Warn,
                message: "uh oh".into(),
            },
        )];
        let doc = trace_json(&events);
        assert!(doc.contains("\"level\":\"warn\""));
        assert!(doc.contains("\"message\":\"uh oh\""));
    }

    #[test]
    fn empty_stream_is_still_a_valid_document() {
        let doc = trace_json(&[]);
        assert!(doc.contains("\"traceEvents\""));
    }

    #[test]
    fn multi_process_merge_names_each_pid_track() {
        let local = vec![
            ev(
                10,
                1,
                EventKind::Begin {
                    name: "fabric.route",
                },
            ),
            ev(
                90,
                1,
                EventKind::End {
                    name: "fabric.route",
                },
            ),
        ];
        let remote = vec![
            ev(
                2,
                1,
                EventKind::Begin {
                    name: "serve.request",
                },
            ),
            ev(
                40,
                1,
                EventKind::End {
                    name: "serve.request",
                },
            ),
        ];
        let doc = trace_json_multi(&[
            TraceProcess {
                pid: 1,
                name: "client".into(),
                events: &local,
            },
            TraceProcess {
                pid: 2,
                name: "tcp://127.0.0.1:7601".into(),
                events: &remote,
            },
        ]);
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"args\":{\"name\":\"client\"}"));
        assert!(doc.contains("\"args\":{\"name\":\"tcp://127.0.0.1:7601\"}"));
        assert!(doc.contains("\"name\":\"fabric.route\",\"cat\":\"gensor\",\"ph\":\"X\",\"pid\":1"));
        assert!(
            doc.contains("\"name\":\"serve.request\",\"cat\":\"gensor\",\"ph\":\"X\",\"pid\":2")
        );
    }

    #[test]
    fn multi_process_merge_is_total_on_truncated_remote_rings() {
        // A ring snapshotted mid-request: orphan End (Begin rotated out)
        // plus a still-open Begin. The merge must stay well-formed.
        let remote = vec![
            ev(5, 1, EventKind::End { name: "ghost" }),
            ev(
                6,
                1,
                EventKind::Begin {
                    name: "serve.request",
                },
            ),
            ev(9, 1, EventKind::Point { name: "walk.step" }),
        ];
        let doc = trace_json_multi(&[TraceProcess {
            pid: 3,
            name: "survivor".into(),
            events: &remote,
        }]);
        assert!(!doc.contains("ghost"));
        assert!(doc.contains("\"name\":\"serve.request\""));
        assert!(doc.contains("\"ts\":6,\"dur\":3"));
    }
}
