//! The transition-benefit formulas (paper §IV-B, Eqs. 1–3).
//!
//! Each formula is a pure function of the states before/after one action
//! and the hardware architecture — no code generation, no profiling. The
//! benefit of an action is its predicted acceleration ratio; Alg. 2
//! normalizes benefits into transition probabilities.

use etir::analytics::ScheduleStats;
use etir::{Action, Etir};
use hardware::{GpuSpec, LevelKind};
use simgpu::model::bank_conflict_degree;

/// Multiplicative benefit attributed to one doubling of the unroll factor
/// (instruction-pipeline utilisation). Not one of the paper's three
/// formulas — unroll is in its Table I primitive set but gets no explicit
/// benefit formula — so it receives a fixed mild prior.
const UNROLL_BENEFIT: f64 = 1.08;

/// Eq. 1 — tiling benefit:
/// `(Q(T)/Q(T')) / (F(T)/F(T')) = Q(T)·F(T') / (Q(T')·F(T))`.
///
/// `Q` is the memory traffic into the current scheduling level, `F` the
/// footprint its tiles occupy. A ratio above 1 means the traffic saved
/// outweighs the extra footprint — a higher memory-reuse rate.
pub fn tiling_benefit(before: &Etir, after: &Etir) -> f64 {
    let sb = ScheduleStats::compute(before);
    let sa = ScheduleStats::compute(after);
    tiling_benefit_stats(before.cur_level, before.num_levels, &sb, &sa)
}

/// [`tiling_benefit`] on precomputed stats (the policy scores ~25 actions
/// per step; recomputing the *before* stats per action would dominate the
/// construction time).
pub fn tiling_benefit_stats(
    cur_level: usize,
    num_levels: usize,
    sb: &ScheduleStats,
    sa: &ScheduleStats,
) -> f64 {
    let level = cur_level.min(num_levels.saturating_sub(1));
    let q = sb.traffic_at_level(level).max(1.0);
    let q2 = sa.traffic_at_level(level).max(1.0);
    let f = sb.footprint_at_level(level).max(1.0);
    let f2 = sa.footprint_at_level(level).max(1.0);
    (q * f2) / (q2 * f)
}

/// Eq. 2 — caching benefit:
/// `(L_low + S/B_low) / (L_high + S/B_high)`.
///
/// Compares serving the current level's working set from the *lower*
/// (farther) memory against the *higher* (nearer) one the `cache` action
/// switches scheduling to. `S` is the data size exchanged per tile.
pub fn caching_benefit(state: &Etir, spec: &GpuSpec) -> f64 {
    let stats = ScheduleStats::compute(state);
    caching_benefit_stats(state, &stats, spec)
}

/// [`caching_benefit`] on precomputed stats.
pub fn caching_benefit_stats(state: &Etir, stats: &ScheduleStats, spec: &GpuSpec) -> f64 {
    let s_data = stats.footprint_at_level(state.cur_level.min(1));
    let (low, high) = match state.cur_level {
        0 => (spec.level(LevelKind::L2), spec.level(LevelKind::Shared)),
        _ => (
            spec.level(LevelKind::Shared),
            spec.level(LevelKind::Register),
        ),
    };
    low.transfer_time_us(s_data) / high.transfer_time_us(s_data).max(1e-12)
}

/// Eq. 3 — virtual-thread benefit:
/// `ceil(x/W) / ceil(x/(V·W))`.
///
/// The ratio of shared-memory bank-conflict serialization without/with the
/// new virtual-thread configuration. Implemented as the ratio of the
/// simulator's conflict degree so policy and oracle agree by construction.
pub fn vthread_benefit(before: &Etir, after: &Etir, spec: &GpuSpec) -> f64 {
    bank_conflict_degree(before, spec) / bank_conflict_degree(after, spec).max(1.0)
}

/// Benefit of applying `action` in `state` (dispatch over Eqs. 1–3).
///
/// Returns 0 when the action is inapplicable or the successor violates a
/// memory capacity limit (the §IV-C memory check).
pub fn action_benefit(state: &Etir, action: &Action, spec: &GpuSpec) -> f64 {
    let before = ScheduleStats::compute(state);
    action_benefit_stats(state, &before, action, spec)
}

/// [`action_benefit`] when the *before* stats are already computed (the
/// per-step fast path used by the policy).
pub fn action_benefit_stats(
    state: &Etir,
    before: &ScheduleStats,
    action: &Action,
    spec: &GpuSpec,
) -> f64 {
    if !state.can_apply(action) {
        return 0.0;
    }
    match action {
        Action::Tile { .. }
        | Action::InvTile { .. }
        | Action::TileReduce { .. }
        | Action::InvTileReduce { .. } => {
            let next = state.apply(action);
            let after = ScheduleStats::compute(&next);
            if !etir::analytics::MemCheck::check_capacity_stats(&after, spec).fits() {
                return 0.0;
            }
            tiling_benefit_stats(state.cur_level, state.num_levels, before, &after)
        }
        Action::Cache => caching_benefit_stats(state, before, spec),
        Action::SetVthread { .. } | Action::InvVthread { .. } => {
            // vThread moves leave footprints unchanged (no capacity check
            // needed); keep a small floor so the walk can explore
            // conflict-free configurations too.
            let next = state.apply(action);
            vthread_benefit(state, &next, spec).max(0.25)
        }
        Action::Unroll => UNROLL_BENEFIT,
        Action::InvUnroll => 1.0 / UNROLL_BENEFIT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_expr::OpSpec;

    fn gemm(spec: &GpuSpec) -> Etir {
        Etir::initial(OpSpec::gemm(4096, 4096, 4096), spec)
    }

    #[test]
    fn tiling_benefit_matches_closed_form_gemm() {
        // Paper convention: Benefit = Q(T)·F(T') / (Q(T')·F(T)).
        // GEMM per output element: Q ∝ Tk(1/Tm + 1/Tn), F ∝ Tk(Tm + Tn).
        // Doubling Tm from the 1x1 tile:
        //   Q/Q' = (1+1) / (1/2+1) = 4/3  (ignoring the output-write term)
        //   F'/F = (2+1) / (1+1)   = 3/2
        // → benefit = (4/3)·(3/2) = 2.
        let spec = GpuSpec::rtx4090();
        let e = gemm(&spec);
        let next = e.apply(&Action::Tile { dim: 0 });
        let b = tiling_benefit(&e, &next);
        assert!((b - 2.0).abs() < 0.02, "benefit {b}");
    }

    #[test]
    fn tiling_benefit_is_near_uniform_across_dims_for_gemm() {
        // A curious degeneracy of the paper's Eq. 1 on GEMM: Q·F per
        // element is symmetric in (Tm, Tn), so growing either dimension
        // scores ≈ 2. The policy therefore explores tile shapes nearly
        // uniformly and relies on the harvest + analytical model to rank
        // outcomes — which is why the graph's *coverage* (backtracking,
        // many chains) matters.
        let spec = GpuSpec::rtx4090();
        let mut e = gemm(&spec);
        for _ in 0..6 {
            e = e.apply(&Action::Tile { dim: 0 });
        }
        let grow_wide = action_benefit(&e, &Action::Tile { dim: 0 }, &spec);
        let grow_narrow = action_benefit(&e, &Action::Tile { dim: 1 }, &spec);
        for b in [grow_wide, grow_narrow] {
            assert!((1.9..=2.1).contains(&b), "benefit {b}");
        }
    }

    #[test]
    fn inverse_tiling_benefit_is_reciprocal() {
        let spec = GpuSpec::rtx4090();
        let e = gemm(&spec).apply(&Action::Tile { dim: 0 });
        let fwd = tiling_benefit(&gemm(&spec), &e);
        let back = tiling_benefit(&e, &gemm(&spec));
        assert!((fwd * back - 1.0).abs() < 1e-9);
    }

    #[test]
    fn caching_benefit_exceeds_one() {
        // Moving scheduling to a faster level is always predicted
        // beneficial: nearer memory has lower latency and higher bandwidth.
        let spec = GpuSpec::rtx4090();
        let e = gemm(&spec);
        assert!(caching_benefit(&e, &spec) > 1.0);
        let deeper = e.apply(&Action::Cache);
        assert!(caching_benefit(&deeper, &spec) > 1.0);
    }

    #[test]
    fn vthread_benefit_matches_eq3() {
        let spec = GpuSpec::rtx4090();
        // Build a 128-wide block tile → conflict degree ceil(128/32) = 4.
        let mut e = gemm(&spec);
        for _ in 0..7 {
            e = e.apply(&Action::Tile { dim: 1 });
        }
        for _ in 0..2 {
            e = e.apply(&Action::Tile { dim: 0 });
        }
        e = e.apply(&Action::Cache);
        let with_vt = e.apply(&Action::SetVthread { dim: 1 });
        // Eq. 3: ceil(128/32)/ceil(128/(2·32)) = 4/2 = 2.
        let b = vthread_benefit(&e, &with_vt, &spec);
        assert!((b - 2.0).abs() < 1e-9, "benefit {b}");
    }

    #[test]
    fn infeasible_actions_get_zero_probability_mass() {
        let spec = GpuSpec::rtx4090();
        let mut e = gemm(&spec);
        // Grow reduce tile until one more doubling overflows shared memory.
        loop {
            let a = Action::TileReduce { dim: 0 };
            if !e.can_apply(&a) {
                break;
            }
            let next = e.apply(&a);
            if !etir::analytics::MemCheck::check_capacity(&next, &spec).fits() {
                assert_eq!(action_benefit(&e, &a, &spec), 0.0);
                return;
            }
            e = next;
        }
        // Reduce axis capped by extent before memory overflow: grow spatial
        // tiles instead until overflow is reachable.
        for d in [0usize, 1] {
            loop {
                let a = Action::Tile { dim: d };
                if !e.can_apply(&a) {
                    break;
                }
                let next = e.apply(&a);
                if !etir::analytics::MemCheck::check_capacity(&next, &spec).fits() {
                    assert_eq!(action_benefit(&e, &a, &spec), 0.0);
                    return;
                }
                e = next;
            }
        }
        panic!("never reached a memory-infeasible transition");
    }

    #[test]
    fn inapplicable_action_has_zero_benefit() {
        let spec = GpuSpec::rtx4090();
        let e = gemm(&spec);
        // No vthreads at level 0.
        assert_eq!(
            action_benefit(&e, &Action::SetVthread { dim: 0 }, &spec),
            0.0
        );
        assert_eq!(action_benefit(&e, &Action::InvTile { dim: 0 }, &spec), 0.0);
    }

    #[test]
    fn benefits_are_finite_and_nonnegative_everywhere() {
        let spec = GpuSpec::orin_nano();
        let mut e = Etir::initial(OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1), &spec);
        let all = Action::all(e.spatial_rank(), e.reduce_rank());
        for step in 0..30 {
            for a in &all {
                let b = action_benefit(&e, a, &spec);
                assert!(b.is_finite() && b >= 0.0, "step {step} action {a:?} → {b}");
            }
            // Take any applicable growth action to move somewhere new.
            if let Some(a) = all.iter().find(|a| action_benefit(&e, a, &spec) > 0.0) {
                e = e.apply(a);
            } else {
                break;
            }
        }
    }
}
