//! §IV-D — convergence and validity analysis of the construction chain.
//!
//! For small operators the construction graph can be enumerated explicitly.
//! This module builds the finite state space `S` and transition matrix `P`
//! of the *within-level* chain (tiling and inverse-tiling edges; the
//! one-way `cache` edge is excluded, exactly as the paper restricts its
//! irreducibility argument to "states within the same-level memories") and
//! verifies the paper's three claims mechanically:
//!
//! 1. **Irreducibility** — inverse tiling makes same-level states mutually
//!    reachable (strong connectivity).
//! 2. **Aperiodicity** — return times have gcd 1 (computed as the gcd of
//!    `d(u) + 1 − d(v)` over all edges of a BFS labelling).
//! 3. **Stationarity** — an irreducible aperiodic finite chain has a unique
//!    stationary distribution; we find it by power iteration and check
//!    `πP = π`.
//!
//! It also runs the multiplicative value iteration of Eqs. 5–6. The paper
//! states the bare Bellman form `V_{k+1}(i) = max_a π(a|i)·V_k(j)`; taken
//! literally that contracts every value to 0 (all `π < 1`), so — keeping
//! the paper's monotone-convergence intent — we anchor the recursion with
//! each state's own payoff: `V_{k+1}(i) = max(payoff(i), max_a
//! π(a|i)·V_k(j))`. The fixed point is the best probability-discounted
//! payoff reachable from each state, is reached in ≤ |S| sweeps, and its
//! argmax is the maximum-payoff state, which is the claim of §IV-D.

use crate::policy::Policy;
use etir::{Action, Etir};
use hardware::GpuSpec;
use std::collections::HashMap;
use tensor_expr::OpSpec;

/// An explicitly enumerated within-level construction chain.
#[derive(Debug, Clone)]
pub struct ChainSpace {
    /// The enumerated states.
    pub states: Vec<Etir>,
    /// Row-stochastic transition matrix: `probs[i]` lists `(j, p)` pairs.
    pub probs: Vec<Vec<(usize, f64)>>,
}

impl ChainSpace {
    /// Enumerate every state reachable from the unscheduled state of `op`
    /// through within-level tiling edges (no cache, no unroll, no vthread),
    /// then fill in the normalized transition probabilities at annealing
    /// step `t = 0`.
    ///
    /// `laziness` is the self-loop mass per state — the probability that a
    /// sampling round proposes a blocked configuration and the walk stays
    /// put. With `laziness = 0` the pure ±doubling chain is *bipartite*
    /// (every edge flips the parity of `Σ log₂ tile`), hence periodic with
    /// period 2 — the paper's aperiodicity argument ("the number of steps
    /// for a state to return to itself may be 2, 3, or others") implicitly
    /// assumes such rejected-proposal self-loops; any `laziness > 0` makes
    /// the chain aperiodic without changing its stationary behaviour
    /// qualitatively.
    ///
    /// Panics if the space exceeds `max_states` — pick a small operator.
    pub fn enumerate(op: &OpSpec, spec: &GpuSpec, max_states: usize, laziness: f64) -> ChainSpace {
        let _sp = obs::span!("markov.enumerate", op = op.label(), max_states = max_states);
        assert!((0.0..1.0).contains(&laziness));
        let policy = Policy {
            enable_vthread: false,
            enable_unroll: false,
            ..Policy::default()
        };
        let root = Etir::initial(op.clone(), spec);
        let mut index: HashMap<Etir, usize> = HashMap::new();
        let mut states = vec![root.clone()];
        index.insert(root, 0);
        let mut frontier = vec![0usize];
        while let Some(i) = frontier.pop() {
            let here = states[i].clone();
            for row in policy.transition_probs(&here, spec, 0) {
                if row.action == Action::Cache {
                    continue;
                }
                let next = here.apply(&row.action);
                if !index.contains_key(&next) {
                    assert!(
                        states.len() < max_states,
                        "state space exceeds {max_states}; use a smaller operator"
                    );
                    index.insert(next.clone(), states.len());
                    frontier.push(states.len());
                    states.push(next);
                }
            }
        }
        // Second pass: per-state distributions restricted to the subgraph,
        // renormalized (the cache edge's mass is redistributed), with the
        // rejected-proposal self-loop added.
        let mut probs = Vec::with_capacity(states.len());
        for (i, s) in states.iter().enumerate() {
            let rows: Vec<(usize, f64)> = policy
                .transition_probs(s, spec, 0)
                .into_iter()
                .filter(|r| r.action != Action::Cache)
                .map(|r| (index[&s.apply(&r.action)], r.benefit))
                .collect();
            let total: f64 = rows.iter().map(|(_, b)| b).sum();
            let mut row: Vec<(usize, f64)> = rows
                .into_iter()
                .map(|(j, b)| (j, (1.0 - laziness) * b / total))
                .collect();
            if laziness > 0.0 {
                row.push((i, laziness));
            }
            probs.push(row);
        }
        ChainSpace { states, probs }
    }

    /// Number of states `|S|`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the space is empty (never true after `enumerate`).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Strong connectivity of the transition graph (irreducibility).
    pub fn is_irreducible(&self) -> bool {
        let n = self.len();
        let fwd: Vec<Vec<usize>> = self
            .probs
            .iter()
            .map(|row| row.iter().map(|&(j, _)| j).collect())
            .collect();
        let mut bwd = vec![Vec::new(); n];
        for (i, row) in fwd.iter().enumerate() {
            for &j in row {
                bwd[j].push(i);
            }
        }
        reachable_count(&fwd, 0) == n && reachable_count(&bwd, 0) == n
    }

    /// Period of the chain: gcd over all edges `(u → v)` of
    /// `d(u) + 1 − d(v)` for a BFS distance labelling `d` (standard result
    /// for strongly connected graphs). 1 means aperiodic.
    pub fn period(&self) -> u64 {
        let n = self.len();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        dist[0] = 0;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.probs[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let mut g: u64 = 0;
        for (u, row) in self.probs.iter().enumerate() {
            for &(v, _) in row {
                if dist[u] != usize::MAX && dist[v] != usize::MAX {
                    let diff = (dist[u] as i64 + 1 - dist[v] as i64).unsigned_abs();
                    if diff != 0 {
                        g = gcd(g, diff);
                    }
                }
            }
        }
        if g == 0 {
            1
        } else {
            g
        }
    }

    /// Stationary distribution by power iteration; returns `(π, iters)`.
    pub fn stationary(&self, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
        let n = self.len();
        let mut pi = vec![1.0 / n as f64; n];
        for it in 0..max_iters {
            let mut next = vec![0.0; n];
            for (i, row) in self.probs.iter().enumerate() {
                for &(j, p) in row {
                    next[j] += pi[i] * p;
                }
            }
            let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if delta < tol {
                return (pi, it + 1);
            }
        }
        (pi, max_iters)
    }

    /// Total-variation residual of `πP = π` for a candidate distribution.
    pub fn stationarity_residual(&self, pi: &[f64]) -> f64 {
        let n = self.len();
        let mut next = vec![0.0; n];
        for (i, row) in self.probs.iter().enumerate() {
            for &(j, p) in row {
                next[j] += pi[i] * p;
            }
        }
        pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum()
    }

    /// Multiplicative value iteration (Eqs. 5–6, payoff-anchored; see the
    /// module docs). Returns `(V, argmax_state_index, sweeps)`.
    pub fn value_iteration(&self, payoff: &[f64], tol: f64) -> (Vec<f64>, usize, usize) {
        assert_eq!(payoff.len(), self.len());
        let mut v = payoff.to_vec();
        let mut sweeps = 0;
        loop {
            sweeps += 1;
            let mut next = payoff.to_vec();
            for (i, row) in self.probs.iter().enumerate() {
                for &(j, p) in row {
                    let via = p * v[j];
                    if via > next[i] {
                        next[i] = via;
                    }
                }
            }
            let delta: f64 = v
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            // Monotone non-decreasing, as §IV-D argues.
            debug_assert!(next.iter().zip(&v).all(|(n, o)| *n >= *o - 1e-12));
            v = next;
            if delta < tol || sweeps > self.len() + 2 {
                break;
            }
        }
        let argmax = (0..v.len()).max_by(|&a, &b| v[a].total_cmp(&v[b])).unwrap();
        (v, argmax, sweeps)
    }
}

fn reachable_count(adj: &[Vec<usize>], from: usize) -> usize {
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![from];
    seen[from] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ChainSpace {
        let spec = GpuSpec::rtx4090();
        ChainSpace::enumerate(&OpSpec::gemm(16, 8, 16), &spec, 2_000, 0.02)
    }

    #[test]
    fn enumeration_is_finite_and_rooted() {
        let s = small_space();
        assert!(!s.is_empty());
        assert!(
            s.len() > 20,
            "space too small to be interesting: {}",
            s.len()
        );
        assert!(s.len() < 2_000);
        // Row-stochastic.
        for row in &s.probs {
            let total: f64 = row.iter().map(|&(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "row sums to {total}");
        }
    }

    #[test]
    fn chain_is_irreducible() {
        // The paper's claim: inverse tiling makes same-level states
        // mutually convertible.
        assert!(small_space().is_irreducible());
    }

    #[test]
    fn chain_is_aperiodic() {
        assert_eq!(small_space().period(), 1);
    }

    #[test]
    fn pure_doubling_chain_is_bipartite_without_self_loops() {
        // Documents the gap in the paper's §IV-D argument: every tiling
        // edge flips the parity of Σ log₂(tile), so without rejected-
        // proposal self-loops the within-level chain has period 2, not 1.
        let spec = GpuSpec::rtx4090();
        let s = ChainSpace::enumerate(&OpSpec::gemm(16, 8, 16), &spec, 2_000, 0.0);
        assert_eq!(s.period(), 2);
    }

    #[test]
    fn without_inverse_edges_the_chain_is_reducible() {
        // Sanity for the argument: remove backtracking and strong
        // connectivity must fail (a pure growth tree cannot return).
        let spec = GpuSpec::rtx4090();
        let policy = Policy {
            enable_vthread: false,
            enable_unroll: false,
            enable_inverse: false,
            ..Policy::default()
        };
        // Re-enumerate manually with the tree policy.
        let root = Etir::initial(OpSpec::gemm(16, 8, 16), &spec);
        let mut index = HashMap::new();
        let mut states = vec![root.clone()];
        index.insert(root, 0usize);
        let mut frontier = vec![0usize];
        while let Some(i) = frontier.pop() {
            let here = states[i].clone();
            for row in policy.transition_probs(&here, &spec, 0) {
                if row.action == Action::Cache {
                    continue;
                }
                let next = here.apply(&row.action);
                if !index.contains_key(&next) {
                    index.insert(next.clone(), states.len());
                    frontier.push(states.len());
                    states.push(next);
                }
            }
        }
        // From the deepest state nothing is reachable except itself.
        let deepest = states
            .iter()
            .position(|s| {
                policy
                    .transition_probs(s, &spec, 0)
                    .iter()
                    .all(|r| r.action == Action::Cache)
            })
            .expect("growth must saturate");
        assert!(deepest > 0);
    }

    #[test]
    fn stationary_distribution_exists_and_is_fixed() {
        let s = small_space();
        let (pi, iters) = s.stationary(1e-12, 100_000);
        assert!(iters < 100_000, "power iteration did not converge");
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
        assert!(s.stationarity_residual(&pi) < 1e-9);
    }

    #[test]
    fn value_iteration_converges_to_max_payoff_state() {
        let s = small_space();
        // Payoff: simulated GFLOPS of each state (0 for unlaunchable).
        let spec = GpuSpec::rtx4090();
        let payoff: Vec<f64> = s
            .states
            .iter()
            .map(|e| simgpu::simulate(e, &spec).map(|r| r.gflops).unwrap_or(0.0))
            .collect();
        let (v, argmax, sweeps) = s.value_iteration(&payoff, 1e-12);
        assert!(sweeps <= s.len() + 2, "sweeps {sweeps}");
        // V dominates payoff and the argmax is the max-payoff state.
        for (vi, pi) in v.iter().zip(&payoff) {
            assert!(vi >= pi);
        }
        let best_payoff = (0..payoff.len())
            .max_by(|&a, &b| payoff[a].total_cmp(&payoff[b]))
            .unwrap();
        assert_eq!(argmax, best_payoff);
        // §IV-D: "convergence can generally be achieved after about 100
        // iterations" — our sweep count for this space is well inside that.
        assert!(sweeps <= 100, "sweeps {sweeps}");
    }
}
