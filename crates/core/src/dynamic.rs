//! Real-time optimization for dynamic DNNs — the paper's stated ongoing
//! work ("design a dynamic optimizing system based on Gensor to achieve
//! efficient real-time optimization of dynamic deep neural networks",
//! §VII).
//!
//! [`DynamicOptimizer`] wraps the Gensor tuner with two mechanisms:
//!
//! 1. **Schedule cache** — exact shapes seen before return their compiled
//!    kernel instantly (the kernel-cache behaviour of deployed compilers).
//! 2. **Warm starts** — a new shape *transplants* the schedules of its
//!    nearest cached neighbours (tiles clamped into the new shape's
//!    envelope, divisibility repaired) as ready-made candidates, and runs
//!    a reduced-chain construction around them. Because tensor programs
//!    are memory-less (the paper's own premise), a good schedule for a
//!    nearby shape is a good *state* to start the Markov exploration from.

use crate::tuner::{Gensor, GensorConfig};
use etir::Etir;
use hardware::GpuSpec;
use parking_lot::RwLock;
use simgpu::{pick_best, CompiledKernel, Tuner};
use std::collections::HashMap;
use std::time::Instant;
use tensor_expr::OpSpec;

/// Cache + warm-start wrapper around [`Gensor`].
pub struct DynamicOptimizer {
    /// The underlying tuner used for cold compiles.
    cold: Gensor,
    /// Reduced-budget tuner used when warm candidates exist.
    warm: Gensor,
    cache: RwLock<HashMap<OpSpec, CompiledKernel>>,
    stats: RwLock<CacheStats>,
}

/// Cache behaviour counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-shape hits (no tuning at all).
    pub hits: u64,
    /// Compiles that reused a neighbour's schedule as a warm start.
    pub warm_starts: u64,
    /// Cold compiles (empty or unrelated cache).
    pub cold_misses: u64,
}

impl Default for DynamicOptimizer {
    fn default() -> Self {
        DynamicOptimizer::new(Gensor::default())
    }
}

impl DynamicOptimizer {
    /// Wrap a tuner; the warm-path variant runs a quarter of its chains.
    pub fn new(cold: Gensor) -> Self {
        let warm_cfg = GensorConfig {
            chains: (cold.cfg.chains / 4).max(1),
            ..cold.cfg.clone()
        };
        DynamicOptimizer {
            cold,
            warm: Gensor::with_config(warm_cfg),
            cache: RwLock::new(HashMap::new()),
            stats: RwLock::new(CacheStats::default()),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.read()
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.cache.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.read().is_empty()
    }

    /// Compile `op`, consulting the cache.
    pub fn compile(&self, op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
        if let Some(hit) = self.cache.read().get(op) {
            self.stats.write().hits += 1;
            let mut k = hit.clone();
            k.wall_time_s = 0.0; // a cache hit costs nothing
            return k;
        }
        let t0 = Instant::now();
        let neighbours = self.nearest_neighbours(op, 3);
        let result = if neighbours.is_empty() {
            self.stats.write().cold_misses += 1;
            self.cold.compile(op, spec)
        } else {
            self.stats.write().warm_starts += 1;
            // Transplanted candidates compete with a reduced-budget run.
            let transplanted: Vec<Etir> = neighbours
                .iter()
                .filter_map(|n| transplant(n, op, spec))
                .collect();
            let warm_best = pick_best(&transplanted, spec);
            let mut fresh = self.warm.compile(op, spec);
            if let Some((e, r)) = warm_best {
                if r.time_us < fresh.report.time_us {
                    fresh.etir = e;
                    fresh.report = r;
                }
            }
            fresh.wall_time_s = t0.elapsed().as_secs_f64();
            fresh
        };
        self.cache.write().insert(op.clone(), result.clone());
        result
    }

    /// The cached schedules of the same operator class, nearest first by
    /// log-shape distance.
    fn nearest_neighbours(&self, op: &OpSpec, k: usize) -> Vec<Etir> {
        let cache = self.cache.read();
        let mut scored: Vec<(f64, Etir)> = cache
            .iter()
            .filter(|(o, _)| o.class() == op.class())
            .filter(|(o, _)| {
                o.spatial_extents().len() == op.spatial_extents().len()
                    && o.reduce_extents().len() == op.reduce_extents().len()
            })
            .map(|(o, ck)| (shape_distance(o, op), ck.etir.clone()))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.into_iter().take(k).map(|(_, e)| e).collect()
    }
}

/// Σ |log2 extent ratios| over spatial + reduce axes.
fn shape_distance(a: &OpSpec, b: &OpSpec) -> f64 {
    let dist = |x: &[u64], y: &[u64]| -> f64 {
        x.iter()
            .zip(y)
            .map(|(&p, &q)| ((p as f64).log2() - (q as f64).log2()).abs())
            .sum()
    };
    dist(&a.spatial_extents(), &b.spatial_extents())
        + dist(&a.reduce_extents(), &b.reduce_extents())
}

/// Re-target a schedule found for one shape onto another shape of the same
/// class: tiles are clamped into the new extents' power-of-two envelope
/// and the `reg·vthread | smem` divisibility is repaired bottom-up.
/// Returns `None` if the transplant violates hardware capacity.
#[allow(clippy::needless_range_loop)] // index addresses several parallel arrays
pub fn transplant(source: &Etir, op: &OpSpec, spec: &GpuSpec) -> Option<Etir> {
    let mut e = Etir::initial(op.clone(), spec);
    let sp = op.spatial_extents();
    for i in 0..e.spatial_rank() {
        let cap = sp[i].next_power_of_two();
        let reg = source.reg_tile[i].min(cap);
        let vt = source.vthreads[i].min(cap / reg.max(1)).max(1);
        let smem = source.smem_tile[i].clamp(reg * vt, cap.max(reg * vt));
        // All quantities are powers of two, so max() preserves
        // divisibility: smem ≥ reg·vt ⇒ reg·vt | smem.
        e.reg_tile[i] = reg;
        e.vthreads[i] = vt;
        e.smem_tile[i] = smem;
    }
    for (j, &ext) in op.reduce_extents().iter().enumerate() {
        e.reduce_tile[j] = source.reduce_tile[j].min(ext.next_power_of_two());
    }
    e.unroll = source.unroll;
    e.cur_level = e.num_levels;
    debug_assert_eq!(e.validate(), Ok(()));
    if etir::analytics::MemCheck::check(&e, spec).fits() {
        Some(e)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs() -> Vec<OpSpec> {
        [64u64, 96, 128, 192, 256]
            .iter()
            .map(|&s| OpSpec::gemm(8 * s, 512, 512))
            .collect()
    }

    #[test]
    fn exact_hit_is_free_and_identical() {
        let spec = GpuSpec::rtx4090();
        let opt = DynamicOptimizer::default();
        let op = OpSpec::gemm(1024, 512, 512);
        let a = opt.compile(&op, &spec);
        let b = opt.compile(&op, &spec);
        assert_eq!(a.etir, b.etir);
        assert_eq!(b.wall_time_s, 0.0);
        let s = opt.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.cold_misses, 1);
        assert_eq!(opt.len(), 1);
    }

    #[test]
    fn warm_starts_kick_in_for_neighbouring_shapes() {
        let spec = GpuSpec::rtx4090();
        let opt = DynamicOptimizer::default();
        for op in seqs() {
            opt.compile(&op, &spec);
        }
        let s = opt.stats();
        assert_eq!(s.cold_misses, 1, "only the first shape is cold");
        assert_eq!(s.warm_starts, 4);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn warm_quality_matches_cold_quality() {
        // The warm path runs 1/4 of the chains but inherits neighbour
        // schedules; quality must stay within a few percent of cold.
        let spec = GpuSpec::rtx4090();
        let opt = DynamicOptimizer::default();
        let cold_tuner = Gensor::default();
        for op in seqs() {
            let warm = opt.compile(&op, &spec);
            let cold = cold_tuner.compile(&op, &spec);
            assert!(
                warm.report.time_us <= cold.report.time_us * 1.08,
                "{}: warm {} vs cold {}",
                op.label(),
                warm.report.time_us,
                cold.report.time_us
            );
        }
    }

    #[test]
    fn transplant_repairs_divisibility_and_capacity() {
        let spec = GpuSpec::rtx4090();
        // A big schedule moved onto a much smaller shape must clamp.
        let big = Gensor::default()
            .compile(&OpSpec::gemm(8192, 8192, 8192), &spec)
            .etir;
        let small = OpSpec::gemm(96, 24, 48);
        let t = transplant(&big, &small, &spec).expect("transplant fits");
        assert_eq!(t.validate(), Ok(()));
        assert!(etir::analytics::MemCheck::check(&t, &spec).fits());
        // And it still computes the right thing.
        interp::check_schedule(&t);
    }

    #[test]
    fn transplant_across_identical_shape_is_lossless() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(2048, 1024, 2048);
        let src = Gensor::default().compile(&op, &spec).etir;
        let t = transplant(&src, &op, &spec).unwrap();
        assert_eq!(t.smem_tile, src.smem_tile);
        assert_eq!(t.reg_tile, src.reg_tile);
        assert_eq!(t.vthreads, src.vthreads);
        assert_eq!(t.reduce_tile, src.reduce_tile);
    }

    #[test]
    fn different_classes_never_cross_pollinate() {
        let spec = GpuSpec::rtx4090();
        let opt = DynamicOptimizer::default();
        opt.compile(&OpSpec::gemm(1024, 512, 512), &spec);
        opt.compile(&OpSpec::gemv(4096, 512), &spec);
        let s = opt.stats();
        assert_eq!(s.cold_misses, 2, "GEMV must not warm-start from GEMM");
    }

    #[test]
    fn warm_path_is_cheaper_than_cold() {
        let spec = GpuSpec::rtx4090();
        let opt = DynamicOptimizer::default();
        let ops = seqs();
        let cold = opt.compile(&ops[0], &spec);
        let warm = opt.compile(&ops[1], &spec);
        assert!(
            warm.candidates_evaluated < cold.candidates_evaluated,
            "warm {} !< cold {}",
            warm.candidates_evaluated,
            cold.candidates_evaluated
        );
    }
}
