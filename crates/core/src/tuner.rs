//! The user-facing Gensor tuner: parallel multi-chain construction.
//!
//! One Markov walk explores one trajectory through the construction graph.
//! Like any Monte-Carlo process, independent chains multiply coverage for
//! free, so the tuner runs several walks with decorrelated seeds — in
//! parallel with `crossbeam::scope` worker threads, one RNG stream per
//! chain — and scores every harvested state with the analytical performance
//! model (`simgpu`), keeping the global winner.

use crate::walk::Walk;
use etir::Etir;
use hardware::GpuSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgpu::{pick_best, CompiledKernel, KernelReport, Tuner};
use std::time::Instant;
use tensor_expr::OpSpec;

/// Tuner configuration.
#[derive(Debug, Clone)]
pub struct GensorConfig {
    /// Number of independent Markov chains.
    pub chains: usize,
    /// Base RNG seed; chain `i` uses `seed + i`.
    pub seed: u64,
    /// The walk (temperature schedule + policy).
    pub walk: Walk,
}

impl Default for GensorConfig {
    fn default() -> Self {
        GensorConfig {
            chains: 16,
            seed: 0xC0FFEE,
            walk: Walk::default(),
        }
    }
}

impl GensorConfig {
    /// Attach a learned-model pruner: every chain's walk steps will
    /// exact-score only the model's top-k shortlist (DESIGN §12).
    pub fn with_pruner(mut self, pruner: std::sync::Arc<learned::Pruner>) -> Self {
        self.walk.policy.pruner = Some(pruner);
        self
    }

    /// Override the base RNG seed (chain `i` walks with `seed + i`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The Gensor tuner.
#[derive(Debug, Clone, Default)]
pub struct Gensor {
    /// Configuration.
    pub cfg: GensorConfig,
}

impl Gensor {
    /// Gensor with a custom configuration.
    pub fn with_config(cfg: GensorConfig) -> Self {
        Gensor { cfg }
    }

    /// The Table VI ablation variant: graph construction without the
    /// `setVthread` primitive.
    pub fn without_vthread() -> Self {
        let mut cfg = GensorConfig::default();
        cfg.walk.policy.enable_vthread = false;
        Gensor { cfg }
    }

    /// Degenerate single-chain variant for experiments that study one walk.
    pub fn single_chain(seed: u64) -> Self {
        Gensor {
            cfg: GensorConfig {
                chains: 1,
                seed,
                ..GensorConfig::default()
            },
        }
    }

    /// Chains actually launched for `op`: the configured count scaled by
    /// the operator's iteration-space rank (a rank-7 conv graph has ~2.3×
    /// the branching of a rank-3 GEMM, and independent chains are the
    /// Monte-Carlo lever for coverage).
    pub fn chains_for(&self, op: &OpSpec) -> usize {
        let rank = op.spatial_extents().len() + op.reduce_extents().len();
        (self.cfg.chains * rank).div_ceil(3).max(1)
    }

    /// Run all chains, returning per-chain winners (used by the
    /// convergence-study experiment as well as `compile`).
    pub fn run_chains(&self, op: &OpSpec, spec: &GpuSpec) -> Vec<(Etir, KernelReport, u64)> {
        let chains = self.chains_for(op);
        let seeds: Vec<u64> = (0..chains)
            .map(|i| self.cfg.seed.wrapping_add(i as u64))
            .collect();
        let walk = &self.cfg.walk;
        let results = simgpu::parallel_map(&seeds, |&seed| {
            let _sp = obs::span!("chain", seed = seed, op = op.label());
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = walk.run(op, spec, &mut rng);
            // Every visited state was scored online; the harvested
            // top_results and the best-seen state compete.
            let n = (rec.steps + 1) as u64;
            let mut chain_best = pick_best(&rec.top_results, spec);
            if let Some((e, t)) = rec.best_seen {
                let better = chain_best.as_ref().is_none_or(|(_, br)| t < br.time_us);
                if better {
                    if let Ok(r) = simgpu::simulate(&e, spec) {
                        chain_best = Some((e, r));
                    }
                }
            }
            chain_best.map(|(e, r)| (e, r, n))
        });
        results.into_iter().flatten().collect()
    }
}

impl Tuner for Gensor {
    fn name(&self) -> &'static str {
        if self.cfg.walk.policy.enable_vthread {
            "Gensor"
        } else {
            "Gensor w/o vThread"
        }
    }

    fn compile(&self, op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
        let _sp = obs::span!(
            "tune",
            tuner = self.name(),
            op = op.label(),
            chains = self.chains_for(op)
        );
        obs::counter_inc!("gensor_core_compiles_total", "Gensor tuner compiles run");
        let t0 = Instant::now();
        let per_chain = self.run_chains(op, spec);
        let candidates_evaluated: u64 = per_chain.iter().map(|(_, _, n)| n).sum();
        let best = per_chain
            .into_iter()
            .min_by(|a, b| a.1.time_us.total_cmp(&b.1.time_us));
        let (etir, report) = match best {
            Some((e, r, _)) => (e, r),
            None => {
                // Pathological: every harvested state unlaunchable; fall
                // back to the (always feasible) unscheduled program.
                let e = Etir::initial(op.clone(), spec);
                let r = simgpu::simulate(&e, spec).expect("initial state is feasible");
                (e, r)
            }
        };
        // Construction-by-analysis must never emit an illegal schedule;
        // prove it in debug builds before anyone lowers or caches this.
        #[cfg(debug_assertions)]
        {
            let vr = verify::verify_schedule(&etir, Some(spec));
            assert!(
                vr.is_legal(),
                "tuner produced illegal schedule:\n{}",
                vr.render()
            );
        }
        CompiledKernel {
            etir,
            report,
            wall_time_s: t0.elapsed().as_secs_f64(),
            simulated_tuning_s: 0.0,
            candidates_evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roller::Roller;

    #[test]
    fn gensor_compiles_a_gemm_well() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(2048, 2048, 2048);
        let ck = Gensor::default().compile(&op, &spec);
        let frac = ck.report.gflops / spec.peak_fp32_gflops;
        assert!(frac > 0.2, "Gensor should land ≥20% of peak, got {frac:.3}");
        assert_eq!(ck.simulated_tuning_s, 0.0, "construction never measures");
    }

    #[test]
    fn gensor_is_reproducible() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(1024, 512, 2048);
        let a = Gensor::default().compile(&op, &spec);
        let b = Gensor::default().compile(&op, &spec);
        assert_eq!(a.etir, b.etir);
    }

    #[test]
    fn gensor_beats_roller_on_average_over_gemms() {
        // The paper's headline: graph construction outperforms the
        // tree-based method (≈18% average on the suite; here we assert a
        // strict average win over a GEMM sample).
        let spec = GpuSpec::rtx4090();
        let shapes = [
            (2048u64, 2048u64, 2048u64),
            (8192, 8192, 8192),
            (65536, 4, 1024),
            (32768, 64, 2048),
            (16384, 32, 1024),
        ];
        let gensor = Gensor::default();
        let roller = Roller::default();
        let mut ratio_sum = 0.0;
        for (m, k, n) in shapes {
            let op = OpSpec::gemm(m, k, n);
            let g = gensor.compile(&op, &spec);
            let r = roller.compile(&op, &spec);
            let ratio = g.report.gflops / r.report.gflops;
            ratio_sum += ratio;
        }
        let avg = ratio_sum / shapes.len() as f64;
        assert!(avg > 1.0, "Gensor/Roller average ratio {avg:.3} ≤ 1");
    }

    #[test]
    fn vthread_ablation_never_sets_vthreads() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(4096, 512, 4096);
        let ck = Gensor::without_vthread().compile(&op, &spec);
        assert!(ck.etir.vthreads.iter().all(|&v| v == 1));
        assert_eq!(Gensor::without_vthread().name(), "Gensor w/o vThread");
    }

    #[test]
    fn full_gensor_at_least_matches_ablation() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(4096, 512, 4096);
        let full = Gensor::default().compile(&op, &spec);
        let ablated = Gensor::without_vthread().compile(&op, &spec);
        assert!(
            full.report.gflops >= ablated.report.gflops * 0.98,
            "full {} vs ablated {}",
            full.report.gflops,
            ablated.report.gflops
        );
    }

    #[test]
    fn more_chains_never_hurt() {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(2048, 1024, 2048);
        let one = Gensor::with_config(GensorConfig {
            chains: 1,
            ..Default::default()
        })
        .compile(&op, &spec);
        let eight = Gensor::with_config(GensorConfig {
            chains: 8,
            ..Default::default()
        })
        .compile(&op, &spec);
        // Chain 0 of the 8-chain run is the same walk as the 1-chain run,
        // so the 8-chain result can only be equal or better.
        assert!(eight.report.time_us <= one.report.time_us * 1.0001);
    }

    #[test]
    fn compiles_every_operator_class() {
        let spec = GpuSpec::orin_nano();
        let gensor = Gensor::with_config(GensorConfig {
            chains: 4,
            ..Default::default()
        });
        for op in [
            OpSpec::gemm(1024, 256, 512),
            OpSpec::gemv(8192, 1024),
            OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1),
            OpSpec::avg_pool2d(16, 48, 48, 48, 2, 2),
            OpSpec::elementwise(1 << 20, 2, 1),
        ] {
            let ck = gensor.compile(&op, &spec);
            assert!(ck.report.gflops > 0.0, "{}", op.label());
            assert!(
                etir::analytics::MemCheck::check(&ck.etir, &spec).fits(),
                "{} chose unlaunchable schedule",
                op.label()
            );
        }
    }
}
