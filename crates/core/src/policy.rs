//! Alg. 2 — the Markov scheduling policy.
//!
//! For the current state, every syntactically possible action is scored by
//! its benefit formula; infeasible transitions get zero mass (§IV-C memory
//! check); the `cache` action's mass is boosted by the annealing factor
//! `3 / (1 + e^{-(ln5/10)(t-10)})` so the walk converges toward higher
//! memory levels as the step count `t` grows; the vector is normalized into
//! a probability distribution, and one action is drawn by roulette
//! selection.

use crate::benefit::action_benefit_stats;
use etir::analytics::ScheduleStats;
use etir::{Action, Etir};
use hardware::GpuSpec;
use learned::{Pruner, Shortlist};
use rand::Rng;
use std::sync::Arc;

/// One scored outgoing edge.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionProb {
    /// The action (edge label).
    pub action: Action,
    /// Raw benefit (acceleration ratio) from Eqs. 1–3.
    pub benefit: f64,
    /// Normalized selection probability.
    pub prob: f64,
}

/// One step's scored distribution plus evaluation accounting — how much
/// exact benefit work the step cost and whether the learned model pruned
/// it. The walk aggregates these into [`crate::walk::WalkRecord`]; the
/// `--learned` acceptance criterion (≥5× fewer exact evaluations) is
/// measured from them.
#[derive(Debug, Clone)]
pub struct StepScoring {
    /// The normalized transition distribution (empty if nothing feasible).
    pub rows: Vec<ActionProb>,
    /// Exact benefit-formula evaluations this step performed.
    pub exact_evals: u64,
    /// Learned-model predictions this step performed.
    pub model_predictions: u64,
    /// Whether the model's shortlist replaced full exact scoring.
    pub pruned: bool,
    /// Whether a pruner was present but fell back to exact scoring.
    pub fallback: bool,
}

/// The Markov transition policy.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Whether `setVthread` edges exist (disabled for the "Gensor w/o
    /// vThread" ablation of Table VI).
    pub enable_vthread: bool,
    /// Whether inverse (backtracking) edges exist (disabling them degrades
    /// the graph to a Roller-style tree; used by ablation benches).
    pub enable_inverse: bool,
    /// Whether unroll edges exist (disabled by the explicit-chain analysis
    /// in [`crate::markov`] to keep enumerated state spaces small).
    pub enable_unroll: bool,
    /// Learned-model pruner: when set, each step ranks the applicable
    /// actions with the trained benefit model and exact-scores only the
    /// top-k shortlist, falling back to full scoring on low confidence
    /// (DESIGN §12). `None` = the exact walk, unchanged.
    pub pruner: Option<Arc<Pruner>>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            enable_vthread: true,
            enable_inverse: true,
            enable_unroll: true,
            pruner: None,
        }
    }
}

/// Scale applied to the (compressed) Eq. 2 caching benefit.
///
/// Eq. 2 compares absolute memory-level speeds, so its magnitude — a
/// latency/bandwidth ratio of ≈ 9× at the shared-memory level and ≈ 60× at
/// the register level — is not commensurable with the relative tiling
/// ratios of Eq. 1 (≈ 2×); undamped, the walk would descend a memory level
/// within a handful of steps, before any tiling has happened. The paper
/// does not give a normalization constant, so the raw ratio enters with
/// fourth-root compression (`eq2^{1/4}`, flattening the 9×/60× level gap
/// to 1.7×/2.8×) times this scale, leaving the paper's annealing sigmoid
/// as the primary dial. The value is chosen so the expected first passage
/// to the next level lands in the tens of steps, matching the paper's
/// "convergence after about 100 iterations".
const CACHE_SCALE: f64 = 0.07;

impl Policy {
    /// The annealing boost applied to the `cache` action at step `t`
    /// (paper §IV-C): `3 / (1 + e^{-(ln5/10)(t-10)})`.
    pub fn cache_boost(t: u32) -> f64 {
        3.0 / (1.0 + (-(5.0f64.ln() / 10.0) * (t as f64 - 10.0)).exp())
    }

    /// Whether `action` survives the ablation switches.
    fn enabled(&self, action: &Action) -> bool {
        if !self.enable_vthread
            && matches!(
                action,
                Action::SetVthread { .. } | Action::InvVthread { .. }
            )
        {
            return false;
        }
        if !self.enable_inverse && action.is_inverse() {
            return false;
        }
        if !self.enable_unroll && matches!(action, Action::Unroll | Action::InvUnroll) {
            return false;
        }
        true
    }

    /// Score all actions of `state` at annealing step `t`, returning the
    /// normalized transition distribution (probabilities sum to 1 unless no
    /// action is feasible, in which case the list is empty).
    ///
    /// Thin wrapper over [`Policy::score_step`] for callers that don't
    /// need the evaluation accounting (the explicit-chain analysis, tests).
    pub fn transition_probs(&self, state: &Etir, spec: &GpuSpec, t: u32) -> Vec<ActionProb> {
        self.score_step(state, spec, t).rows
    }

    /// Score one walk step, with evaluation accounting.
    ///
    /// With no pruner this is the exact Alg. 2 scoring: every enabled
    /// action is run through the benefit formulas. With a pruner, the
    /// applicable actions are ranked by the learned model first and only
    /// the top-k shortlist (plus `Cache`) is exact-scored; a low-confidence
    /// shortlist falls back to the exact path.
    pub fn score_step(&self, state: &Etir, spec: &GpuSpec, t: u32) -> StepScoring {
        let t_score = std::time::Instant::now();
        let before = ScheduleStats::compute(state);
        let candidates: Vec<Action> = Action::all(state.spatial_rank(), state.reduce_rank())
            .into_iter()
            .filter(|a| self.enabled(a))
            .collect();

        // Learned pruning: rank applicable actions with the model; keep
        // the shortlist only when the model is confident.
        let mut model_predictions: u64 = 0;
        let mut pruned = false;
        let mut fallback = false;
        let to_score: Vec<Action> = match &self.pruner {
            Some(pruner) => {
                let applicable: Vec<Action> = candidates
                    .iter()
                    .copied()
                    .filter(|a| state.can_apply(a))
                    .collect();
                match pruner.shortlist(state, &before, &applicable, spec, t as u64) {
                    Shortlist::Keep(keep) => {
                        model_predictions = applicable.len() as u64;
                        pruned = true;
                        keep
                    }
                    Shortlist::Fallback(reason) => {
                        // OOD detection may have predicted a prefix of the
                        // candidates before bailing; count what it used.
                        model_predictions = match reason {
                            learned::FallbackReason::LowSpread => applicable.len() as u64,
                            _ => 0,
                        };
                        fallback = true;
                        candidates
                    }
                }
            }
            None => candidates,
        };

        let record = learned::dataset::recording();
        let mut rows: Vec<ActionProb> = Vec::new();
        let mut evals: u64 = 0;
        for action in to_score {
            let raw = action_benefit_stats(state, &before, &action, spec);
            evals += 1;
            if record && state.can_apply(&action) {
                // Harvest a training pair from the exact evaluation the
                // walk is doing anyway (raw benefit, pre cache-boost).
                let f = learned::featurize(state, &before, &action, spec);
                learned::dataset::record(&state.op.label(), &spec.name, f, raw);
            }
            if raw <= 0.0 {
                continue;
            }
            let benefit = if action == Action::Cache {
                CACHE_SCALE * raw.powf(0.25) * Self::cache_boost(t)
            } else {
                raw
            };
            rows.push(ActionProb {
                action,
                benefit,
                prob: 0.0,
            });
        }
        obs::counter_add!(
            "gensor_core_benefit_evals_total",
            "Benefit-formula evaluations (Eqs. 1-3) across all transition scorings",
            evals
        );
        // Per-class scoring latency (matmul/conv/reduce/elementwise). The
        // registry lookup is a mutex + map probe — noise next to the
        // benefit formulas this function just ran.
        let class = state.op.class().metric_key();
        obs::histogram_us(
            &format!("gensor_core_benefit_eval_us_{class}"),
            "Per-step benefit scoring latency (Eqs. 1-3 over the shortlist), split by operator class",
        )
        .record_us(t_score.elapsed().as_micros() as u64);
        obs::event!(
            "benefit.eval",
            scored = evals,
            feasible = rows.len(),
            t = t,
            class = class
        );
        let total: f64 = rows.iter().map(|r| r.benefit).sum();
        if total <= 0.0 {
            rows.clear();
        } else {
            for r in &mut rows {
                r.prob = r.benefit / total;
            }
        }
        StepScoring {
            rows,
            exact_evals: evals,
            model_predictions,
            pruned,
            fallback,
        }
    }

    /// Roulette-wheel draw over an already-scored distribution, returning
    /// the index of the chosen row (`None` for an empty distribution).
    /// Consumes exactly one `rng.gen()` when `rows` is non-empty — callers
    /// that need the chosen row's benefit/probability (the walk's
    /// convergence telemetry) use this and index, with the same RNG
    /// sequence as [`Policy::select`].
    pub fn choose<R: Rng + ?Sized>(&self, rows: &[ActionProb], rng: &mut R) -> Option<usize> {
        if rows.is_empty() {
            return None;
        }
        let mut ball: f64 = rng.gen();
        for (i, r) in rows.iter().enumerate() {
            if ball < r.prob {
                return Some(i);
            }
            ball -= r.prob;
        }
        // Floating-point slack: fall back to the last row.
        Some(rows.len() - 1)
    }

    /// Roulette-wheel selection over the transition distribution
    /// (Alg. 2's `getAction`). Returns `None` when the state has no
    /// feasible outgoing edge (construction complete or fully blocked).
    pub fn select<R: Rng + ?Sized>(
        &self,
        state: &Etir,
        spec: &GpuSpec,
        t: u32,
        rng: &mut R,
    ) -> Option<Action> {
        let rows = self.transition_probs(state, spec, t);
        self.choose(&rows, rng).map(|i| rows[i].action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor_expr::OpSpec;

    fn state(spec: &GpuSpec) -> Etir {
        Etir::initial(OpSpec::gemm(1024, 512, 2048), spec)
    }

    #[test]
    fn probabilities_normalize_to_one() {
        let spec = GpuSpec::rtx4090();
        let rows = Policy::default().transition_probs(&state(&spec), &spec, 0);
        assert!(!rows.is_empty());
        let total: f64 = rows.iter().map(|r| r.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        assert!(rows.iter().all(|r| r.prob > 0.0));
    }

    #[test]
    fn cache_boost_is_low_early_high_late() {
        // Paper's sigmoid: ≈0.5 at t=0, 1.5 at t=10, →3 as t→∞.
        assert!((Policy::cache_boost(10) - 1.5).abs() < 1e-9);
        assert!(Policy::cache_boost(0) < 0.6);
        assert!(Policy::cache_boost(40) > 2.8);
        assert!(Policy::cache_boost(0) < Policy::cache_boost(20));
    }

    #[test]
    fn cache_probability_rises_with_annealing_step() {
        let spec = GpuSpec::rtx4090();
        let pol = Policy::default();
        let e = state(&spec);
        let p_at = |t: u32| {
            pol.transition_probs(&e, &spec, t)
                .iter()
                .find(|r| r.action == Action::Cache)
                .map(|r| r.prob)
                .unwrap()
        };
        assert!(p_at(0) < p_at(15));
        assert!(p_at(15) < p_at(40));
    }

    #[test]
    fn ablation_removes_vthread_edges() {
        let spec = GpuSpec::rtx4090();
        let mut e = state(&spec);
        for _ in 0..5 {
            e = e.apply(&Action::Tile { dim: 0 });
        }
        e = e.apply(&Action::Cache);
        let full = Policy::default().transition_probs(&e, &spec, 5);
        assert!(full
            .iter()
            .any(|r| matches!(r.action, Action::SetVthread { .. })));
        let ablated = Policy {
            enable_vthread: false,
            ..Policy::default()
        };
        let rows = ablated.transition_probs(&e, &spec, 5);
        assert!(rows
            .iter()
            .all(|r| !matches!(r.action, Action::SetVthread { .. })));
    }

    #[test]
    fn tree_mode_removes_inverse_edges() {
        let spec = GpuSpec::rtx4090();
        let e = state(&spec).apply(&Action::Tile { dim: 0 });
        let tree = Policy {
            enable_inverse: false,
            ..Policy::default()
        };
        let rows = tree.transition_probs(&e, &spec, 0);
        assert!(rows.iter().all(|r| !r.action.is_inverse()));
        let graph = Policy::default().transition_probs(&e, &spec, 0);
        assert!(graph.iter().any(|r| r.action.is_inverse()));
    }

    #[test]
    fn selection_follows_distribution() {
        let spec = GpuSpec::rtx4090();
        let pol = Policy::default();
        let e = state(&spec);
        let rows = pol.transition_probs(&e, &spec, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 20_000;
        for _ in 0..N {
            let a = pol.select(&e, &spec, 0, &mut rng).unwrap();
            *counts.entry(a).or_insert(0usize) += 1;
        }
        for r in &rows {
            let freq = *counts.get(&r.action).unwrap_or(&0) as f64 / N as f64;
            assert!(
                (freq - r.prob).abs() < 0.02,
                "{:?}: freq {freq} vs prob {}",
                r.action,
                r.prob
            );
        }
    }

    #[test]
    fn complete_state_selects_nothing() {
        let spec = GpuSpec::rtx4090();
        let e = state(&spec).apply(&Action::Cache).apply(&Action::Cache);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Policy::default().select(&e, &spec, 50, &mut rng), None);
    }

    #[test]
    fn selection_is_reproducible_with_seed() {
        let spec = GpuSpec::rtx4090();
        let pol = Policy::default();
        let e = state(&spec);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for t in 0..20 {
            assert_eq!(
                pol.select(&e, &spec, t, &mut a),
                pol.select(&e, &spec, t, &mut b)
            );
        }
    }
}
