//! Alg. 1 — the annealed construction walk.
//!
//! One walk starts from the unscheduled state with temperature `T₀`,
//! repeatedly asks the policy for an action, applies it, appends the new
//! state to `top_results` with the paper's acceptance probability
//! `1 − 1/(1 + e^{−0.5(−log T − 10)})`, halves the temperature, and stops
//! when `T` falls below the threshold or the construction completes (all
//! memory levels scheduled).

use crate::policy::Policy;
use etir::Etir;
use hardware::GpuSpec;
use rand::Rng;
use tensor_expr::OpSpec;

/// Configuration of a single construction walk.
#[derive(Debug, Clone)]
pub struct Walk {
    /// Initial temperature `T₀`.
    pub t0: f64,
    /// Termination threshold for `T`.
    pub threshold: f64,
    /// When set, the threshold is derived per operator as
    /// `t0 / 2^(steps_per_rank · rank)` — higher-rank iteration spaces
    /// (conv: 4 spatial + 3 reduce axes) get proportionally more annealing
    /// steps, keeping per-axis exploration comparable to the paper's ~100
    /// iterations on rank-3 GEMM.
    pub steps_per_rank: Option<u32>,
    /// The transition policy.
    pub policy: Policy,
}

impl Default for Walk {
    fn default() -> Self {
        // T halves each step: 1e6 → 1e-24 is ~100 steps for a rank-3 GEMM
        // (steps_per_rank ≈ 33), matching the paper's "convergence after
        // about 100 iterations".
        Walk {
            t0: 1e6,
            threshold: 1e-24,
            steps_per_rank: Some(33),
            policy: Policy::default(),
        }
    }
}

/// The harvest of one walk.
#[derive(Debug, Clone)]
pub struct WalkRecord {
    /// States accepted into `top_results` (plus the terminal state).
    pub top_results: Vec<Etir>,
    /// Number of transitions taken.
    pub steps: u32,
    /// The terminal state.
    pub terminal: Etir,
    /// Best state *visited* anywhere along the walk, ranked online by the
    /// analytical model (the model is free for a construction compiler —
    /// "the compiler can select the optimization path that promises the
    /// highest expected efficiency without repeatedly iterating code
    /// generation and profiling", §III), with its simulated time in µs.
    pub best_seen: Option<(Etir, f64)>,
    /// Best simulated time (µs) seen after each step — the walk's
    /// convergence trace (∞ until the first launchable state). Supports the
    /// paper's "convergence after about 100 iterations" quantitatively.
    pub best_time_trace: Vec<f64>,
    /// Exact benefit-formula evaluations across all steps. Deterministic
    /// per walk (global obs counters aggregate across racing chains and
    /// tests — these per-walk figures are what the ≥5× pruning criterion
    /// is asserted on).
    pub exact_benefit_evals: u64,
    /// Learned-model predictions across all steps (0 without a pruner).
    pub model_predictions: u64,
    /// Steps where the model shortlist replaced full exact scoring.
    pub pruned_steps: u32,
    /// Steps where a present pruner fell back to exact scoring.
    pub fallback_steps: u32,
}

impl Walk {
    /// Effective termination threshold for an operator of the given
    /// iteration-space rank (spatial + reduce axes).
    pub fn threshold_for_rank(&self, rank: usize) -> f64 {
        match self.steps_per_rank {
            Some(spr) => self.t0 / 2f64.powi((spr as i32) * rank as i32),
            None => self.threshold,
        }
    }

    /// Maximum number of steps this configuration can take for an operator
    /// of the given rank.
    pub fn max_steps_for_rank(&self, rank: usize) -> u32 {
        (self.t0 / self.threshold_for_rank(rank))
            .log2()
            .ceil()
            .max(1.0) as u32
    }

    /// Maximum steps for a rank-3 (GEMM-like) operator.
    pub fn max_steps(&self) -> u32 {
        self.max_steps_for_rank(3)
    }

    /// Paper's top-result acceptance probability at temperature `t`.
    pub fn accept_prob(t: f64) -> f64 {
        1.0 - 1.0 / (1.0 + (-0.5 * (-t.ln() - 10.0)).exp())
    }

    /// Run one walk (Alg. 1).
    pub fn run<R: Rng + ?Sized>(&self, op: &OpSpec, spec: &GpuSpec, rng: &mut R) -> WalkRecord {
        let sp = obs::span!("walk", op = op.label(), t0 = self.t0);
        let mut e = Etir::initial(op.clone(), spec);
        let rank = op.spatial_extents().len() + op.reduce_extents().len();
        let threshold = self.threshold_for_rank(rank);
        let mut t = self.t0;
        let mut step: u32 = 0;
        let mut top: Vec<Etir> = Vec::new();
        let mut best_seen: Option<(Etir, f64)> = None;
        let consider = |state: &Etir, best: &mut Option<(Etir, f64)>| {
            if let Ok(r) = simgpu::simulate(state, spec) {
                if best.as_ref().is_none_or(|(_, bt)| r.time_us < *bt) {
                    *best = Some((state.clone(), r.time_us));
                }
            }
        };
        consider(&e, &mut best_seen);
        let mut best_time_trace: Vec<f64> =
            vec![best_seen.as_ref().map_or(f64::INFINITY, |(_, t)| *t)];
        // Annealing progress is normalized to the step budget so the boost
        // sigmoid's shape (midpoint at 10% of the walk, saturation by 40%)
        // is invariant across operator ranks — the paper's constants assume
        // its ~100-iteration GEMM walks.
        let budget = self.max_steps_for_rank(rank).max(1);
        // Per-class step latency series (matmul/conv/reduce/elementwise):
        // one registry lookup per walk, one atomic record per step.
        let class = op.class().metric_key();
        let step_hist = obs::histogram_us(
            &format!("gensor_core_walk_step_us_{class}"),
            "Markov-walk step latency (scoring + apply + simulate), split by operator class",
        );
        let mut pass_start: u32 = 0;
        let mut exact_benefit_evals: u64 = 0;
        let mut model_predictions: u64 = 0;
        let mut pruned_steps: u32 = 0;
        let mut fallback_steps: u32 = 0;
        while t > threshold {
            let t_step = std::time::Instant::now();
            // Annealing progress restarts with each construction pass so
            // every pass sees the full low→high cache-probability ramp.
            let t_norm = ((step - pass_start) as u64 * 100 / budget as u64) as u32;
            // `score_step` + `choose` is exactly `Policy::select` split
            // open (same RNG draw sequence), so the chosen row's benefit
            // and probability are available to the telemetry below without
            // perturbing the walk.
            let scoring = self.policy.score_step(&e, spec, t_norm);
            exact_benefit_evals += scoring.exact_evals;
            model_predictions += scoring.model_predictions;
            pruned_steps += scoring.pruned as u32;
            fallback_steps += scoring.fallback as u32;
            let rows = scoring.rows;
            let Some(pick) = self.policy.choose(&rows, rng) else {
                // Construction complete (or fully blocked) with temperature
                // budget left: Alg. 1's loop runs until T < threshold, so
                // re-initialize and spend the remainder on a fresh pass.
                top.push(e.clone());
                let from = e;
                e = Etir::initial(op.clone(), spec);
                pass_start = step;
                let best_now = best_seen.as_ref().map_or(f64::INFINITY, |(_, t)| *t);
                obs::event!(
                    "walk.step",
                    walk = sp.id(),
                    step = step,
                    class = class,
                    action = "restart",
                    benefit = 0.0,
                    probability = 0.0,
                    temperature = t,
                    accepted = false,
                    best_time_us = best_now,
                    state = from.describe(),
                    exact_evals = scoring.exact_evals,
                    pruned = scoring.pruned
                );
                step_hist.record_us(t_step.elapsed().as_micros() as u64);
                t /= 2.0;
                step += 1;
                best_time_trace.push(best_now);
                continue;
            };
            let row = &rows[pick];
            let next = e.apply(&row.action);
            let accepted = rng.gen::<f64>() < Self::accept_prob(t);
            if accepted {
                top.push(next.clone());
            }
            consider(&next, &mut best_seen);
            let best_now = best_seen.as_ref().map_or(f64::INFINITY, |(_, t)| *t);
            best_time_trace.push(best_now);
            obs::event!(
                "walk.step",
                walk = sp.id(),
                step = step,
                class = class,
                action = format!("{:?}", row.action),
                benefit = row.benefit,
                probability = row.prob,
                temperature = t,
                accepted = accepted,
                best_time_us = best_now,
                state = e.describe(),
                exact_evals = scoring.exact_evals,
                pruned = scoring.pruned
            );
            step_hist.record_us(t_step.elapsed().as_micros() as u64);
            e = next;
            t /= 2.0;
            step += 1;
        }
        // The terminal state is always a candidate.
        top.push(e.clone());
        obs::counter_add!(
            "gensor_core_walk_steps_total",
            "Markov-walk transitions taken (including restarts)",
            step as u64
        );
        obs::counter_inc!("gensor_core_walks_total", "Construction walks run");
        WalkRecord {
            top_results: top,
            steps: step,
            terminal: e,
            best_seen,
            best_time_trace,
            exact_benefit_evals,
            model_predictions,
            pruned_steps,
            fallback_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gemm() -> OpSpec {
        OpSpec::gemm(1024, 512, 2048)
    }

    #[test]
    fn walk_terminates_within_max_steps() {
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let mut rng = StdRng::seed_from_u64(3);
        let rec = w.run(&gemm(), &spec, &mut rng);
        assert!(rec.steps <= w.max_steps());
        assert!(
            rec.steps > 5,
            "walk should do real work: {} steps",
            rec.steps
        );
    }

    #[test]
    fn walks_feed_the_per_class_latency_histograms() {
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let mut rng = StdRng::seed_from_u64(7);
        let rec = w.run(&gemm(), &spec, &mut rng);
        // A GEMM walk lands in the `matmul` class series for both the
        // step loop and the benefit scorer.
        let steps = obs::histogram_us(
            "gensor_core_walk_step_us_matmul",
            "Markov-walk step latency (scoring + apply + simulate), split by operator class",
        );
        assert!(
            steps.count() >= rec.steps as u64,
            "step histogram count {} < walk steps {}",
            steps.count(),
            rec.steps
        );
        let evals = obs::histogram_us(
            "gensor_core_benefit_eval_us_matmul",
            "Per-step benefit scoring latency (Eqs. 1-3 over the shortlist), split by operator class",
        );
        assert!(evals.count() >= 1);
    }

    #[test]
    fn default_walk_matches_paper_iteration_scale() {
        // "convergence can generally be achieved after about 100
        // iterations" — the default budget is the same order.
        let w = Walk::default();
        let m = w.max_steps();
        assert!((80..=140).contains(&m), "max steps {m}");
    }

    #[test]
    fn walk_usually_completes_construction() {
        // With restarts a walk may end mid-pass, but most walks should
        // harvest at least one fully-constructed (complete) state.
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let mut done = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rec = w.run(&gemm(), &spec, &mut rng);
            if rec.top_results.iter().any(|e| e.is_complete()) {
                done += 1;
            }
        }
        assert!(done >= 7, "only {done}/10 walks completed a pass");
    }

    #[test]
    fn budget_is_fully_consumed_despite_early_completion() {
        // Alg. 1 runs until T < threshold: a completed pass restarts rather
        // than idling out the remaining temperature budget.
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let mut rng = StdRng::seed_from_u64(4);
        let rec = w.run(&gemm(), &spec, &mut rng);
        assert_eq!(rec.steps, w.max_steps_for_rank(3));
    }

    #[test]
    fn walk_harvests_many_states() {
        let spec = GpuSpec::rtx4090();
        let mut rng = StdRng::seed_from_u64(11);
        let rec = Walk::default().run(&gemm(), &spec, &mut rng);
        assert!(
            rec.top_results.len() >= 10,
            "harvest too small: {}",
            rec.top_results.len()
        );
    }

    #[test]
    fn accept_prob_is_a_probability_everywhere() {
        let mut t = 1e6;
        while t > 1e-24 {
            let p = Walk::accept_prob(t);
            assert!((0.0..=1.0).contains(&p), "p({t}) = {p}");
            t /= 2.0;
        }
    }

    #[test]
    fn walks_differ_across_seeds() {
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let ra = w.run(&gemm(), &spec, &mut a);
        let rb = w.run(&gemm(), &spec, &mut b);
        assert_ne!(
            ra.terminal, rb.terminal,
            "distinct seeds should explore differently"
        );
    }

    #[test]
    fn walk_is_reproducible() {
        let spec = GpuSpec::rtx4090();
        let w = Walk::default();
        let ra = w.run(&gemm(), &spec, &mut StdRng::seed_from_u64(5));
        let rb = w.run(&gemm(), &spec, &mut StdRng::seed_from_u64(5));
        assert_eq!(ra.terminal, rb.terminal);
        assert_eq!(ra.top_results, rb.top_results);
    }

    #[test]
    fn convergence_trace_is_monotone_and_full_length() {
        let spec = GpuSpec::rtx4090();
        let mut rng = StdRng::seed_from_u64(17);
        let rec = Walk::default().run(&gemm(), &spec, &mut rng);
        assert_eq!(rec.best_time_trace.len() as u32, rec.steps + 1);
        assert!(rec.best_time_trace.windows(2).all(|w| w[1] <= w[0]));
        // The bulk of the improvement lands within the budget (the paper's
        // "convergence after about 100 iterations").
        let last = *rec.best_time_trace.last().unwrap();
        assert!(last.is_finite());
        let mid = rec.best_time_trace[rec.best_time_trace.len() / 2];
        assert!(mid < rec.best_time_trace[1] || mid == last);
    }

    #[test]
    fn every_harvested_state_fits_memory_capacity() {
        let spec = GpuSpec::orin_nano();
        let mut rng = StdRng::seed_from_u64(21);
        let rec = Walk::default().run(&gemm(), &spec, &mut rng);
        for s in &rec.top_results {
            assert!(
                etir::analytics::MemCheck::check_capacity(s, &spec).fits(),
                "{}",
                s.describe()
            );
        }
    }
}
