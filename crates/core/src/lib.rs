//! `gensor` — graph-based construction tensor compilation (the paper's
//! primary contribution).
//!
//! Gensor abstracts tensor-program construction as a **graph traversal**:
//! nodes are tensor programs (ETIR states), edges are scheduling primitives
//! (tile / inverse-tile / cache / `setVthread` / unroll). Because tensor
//! programs are *independent and memory-less* — the value of a state does
//! not depend on how the walk reached it — the traversal is driven by
//! **Markov analysis**: every applicable action gets a *benefit* from
//! closed-form formulas over the current program and the hardware
//! architecture (paper Eqs. 1–3), benefits are normalized into transition
//! probabilities, and a roulette selection picks the edge (Alg. 2). A
//! simulated-annealing temperature schedule raises the probability of the
//! `cache` action over time so the walk descends through the memory levels
//! and terminates (Alg. 1); harvested intermediate states (`top_results`)
//! are scored by the analytical performance model and the best one wins.
//!
//! Module map:
//! * [`benefit`] — Eqs. (1)–(3): tiling, caching and vThread benefits.
//! * [`policy`] — Alg. 2: probability vector + roulette selection.
//! * [`walk`] — Alg. 1: the annealed construction walk.
//! * [`tuner`] — the user-facing [`Gensor`] tuner (multi-chain, parallel).
//! * [`markov`] — §IV-D: explicit-chain irreducibility / aperiodicity /
//!   stationarity checks and multiplicative value iteration.
//! * [`dynamic`] — the paper's stated ongoing work: a real-time
//!   re-optimization system (schedule cache + warm-started construction)
//!   for dynamic DNNs.

pub mod benefit;
pub mod dynamic;
pub mod markov;
pub mod policy;
pub mod tuner;
pub mod walk;

pub use dynamic::{transplant, CacheStats, DynamicOptimizer};
pub use policy::{ActionProb, Policy, StepScoring};
pub use tuner::{Gensor, GensorConfig};
pub use walk::{Walk, WalkRecord};
