//! Minimal offline substitute for `proptest`.
//!
//! Keeps the property-testing surface this workspace uses — `proptest!`,
//! `prop_assert*`/`prop_assume!`, `prop_oneof!`, `any`, ranges, tuples,
//! `prop_map`, `collection::vec`, `sample::subsequence`, `ProptestConfig`
//! — over a deliberately simpler engine:
//!
//! * generation is deterministic (case `i` of test `name` derives its RNG
//!   seed from `fnv(name) ^ i`), so failures reproduce without persistence
//!   files;
//! * there is **no shrinking** — a failing case reports its inputs' debug
//!   representation instead of a minimized counterexample;
//! * `prop_assume!` rejections retry with fresh inputs, capped at 50×
//!   the case count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// Construct from a seed (each test case gets a distinct one).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Property violated: the test fails.
    Fail(String),
    /// `prop_assume!` filtered the inputs: retry with new ones.
    Reject(String),
}

/// Runner configuration (`cases` is the only knob this workspace tunes).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 256 * 50,
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: run `case` until `config.cases` successes, retrying
/// rejected cases. Panics (failing the enclosing `#[test]`) on the first
/// `Fail` or if rejections exhaust the retry budget.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a64(name.as_bytes());
    let mut successes: u32 = 0;
    let mut rejects: u32 = 0;
    let mut attempt: u64 = 0;
    while successes < config.cases {
        let seed = base ^ attempt;
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(why)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejects}); last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {successes} \
                     (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase (needed to mix strategy types, e.g. in `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe generation, used to erase concrete strategy types.
trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the branch strategies; must be non-empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- primitive strategies ---------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Full-domain generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for the full domain of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: every value of `T` is fair game.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// --- tuple strategies -------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

// --- collections ------------------------------------------------------------

/// Size specifications accepted by collection strategies.
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

/// `Vec` strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing vectors of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of `elem` values, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling from fixed pools.
pub mod sample {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy choosing an order-preserving subsequence of a pool.
    pub struct Subsequence<T: Clone> {
        pool: Vec<T>,
        size: SizeRange,
    }

    /// Pick `size` elements of `pool`, keeping their relative order.
    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng).min(self.pool.len());
            // Reservoir-free exact sampling: walk the pool, taking each
            // element with probability (needed / remaining).
            let mut out = Vec::with_capacity(want);
            let mut needed = want;
            let total = self.pool.len();
            for (i, item) in self.pool.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = (total - i) as u64;
                if rng.below(remaining) < needed as u64 {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Discard the current case (retry with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(::std::format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($branch)),+
        ])
    };
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        /// Mapping and tuples compose.
        #[test]
        fn map_and_tuple(
            pair in (1u64..5, 1u64..5).prop_map(|(a, b)| a * b),
            v in crate::collection::vec(any::<u8>(), 0..7),
        ) {
            prop_assert!((1..25).contains(&pair));
            prop_assert!(v.len() < 7);
        }

        /// Assume retries instead of failing.
        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        /// prop_oneof draws from every branch's domain.
        #[test]
        fn oneof_mixes(x in prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Config override applies (smoke: the test simply runs).
        #[test]
        fn config_override_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let strat = crate::sample::subsequence(vec![0usize, 1, 2, 3, 4], 3);
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&strat, &mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "unordered: {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_proptest(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            "always_fails",
            |_| Err(crate::TestCaseError::Fail("nope".into())),
        );
    }
}
