//! Minimal offline substitute for `serde_json`: renders and parses the
//! [`serde::Value`] data model as JSON text.
//!
//! Number round-trip contract (relied on by the schedule cache, which
//! asserts bit-identical floats after a store/load cycle):
//!
//! * integers keep their flavour (`U64`/`I64`) and print exactly;
//! * finite floats print either as `{:.1}` (when integral and small enough
//!   that the fraction digit is exact — this preserves `-0.0` and marks the
//!   token as a float) or via Rust's shortest-round-trip `{}` formatting,
//!   which the parser maps back to the identical bit pattern;
//! * non-finite floats become `null` (matches real serde_json).

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialization/parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Convert any serializable type into the generic [`Value`] model.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Render a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Render a value as indented (2-space) JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

/// Build a [`Value`] from JSON-like syntax. Supports `null`, arrays,
/// objects with string-literal keys, and arbitrary serializable
/// expressions as values (nest with an explicit inner `json!` call).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::value_of(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::value_of(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Infallible `to_value` used by the `json!` macro expansion.
pub fn value_of<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Integral floats below 2^53-ish print with one fractional digit so the
    // token stays a float ("5.0", "-0.0"); everything else uses Rust's
    // shortest round-trip formatting, which the parser inverts exactly.
    if f.fract() == 0.0 && f.abs() < 1e16 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number '{text}'")));
        }
        if text.starts_with('-') {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        // Magnitude exceeds 64-bit integers: degrade to float like serde_json.
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.5f64,
            "d": "hi\n\"quoted\"",
            "e": json!([true, false, json!(null)]),
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_bits_survive() {
        for f in [
            0.0f64,
            -0.0,
            5.0,
            0.1,
            1.0 / 3.0,
            2.5e-300,
            1.234_567_890_123e18,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "repr {s}");
        }
    }

    #[test]
    fn non_finite_is_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: Option<f64> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "k": [1u64] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }
}
