//! Minimal offline substitute for `crossbeam`.
//!
//! * [`thread::scope`] delegates to `std::thread::scope` (stable since
//!   Rust 1.63) but keeps crossbeam's signature: the closure receives a
//!   [`thread::Scope`] handle, spawned closures take `&Scope` themselves,
//!   and the call returns `std::thread::Result` (Err if any thread
//!   panicked) instead of propagating the panic.
//! * [`channel::unbounded`] is a Mutex+Condvar MPMC queue with crossbeam's
//!   disconnect semantics: `recv` fails once all senders are dropped and
//!   the queue is drained.

/// Scoped threads in crossbeam's API shape.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Like crossbeam (and unlike
        /// std), the closure receives the scope handle so it can spawn
        /// further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns. Returns `Err` with
    /// the panic payload if `f` or any un-joined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// MPMC channels in crossbeam's API shape.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Sending half; clonable. The channel disconnects when the last
    /// sender drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by `send` when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` when the channel is empty and
    /// disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value (never blocks; the queue is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.queue.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available; `Err(RecvError)` once the
        /// queue is drained and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fans_out_and_disconnects() {
        let (tx, rx) = super::channel::unbounded();
        let total: u64 = super::thread::scope(|s| {
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for i in 1..=100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            workers.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 5050);
    }
}
