//! Minimal offline substitute for the `serde` crate.
//!
//! The real serde decouples data structures from data formats through the
//! `Serializer`/`Deserializer` visitor machinery. This workspace builds in
//! an environment without crates.io access, so this shim collapses that
//! machinery to a single self-describing data model ([`Value`], the JSON
//! object model): `Serialize` maps a type *into* a `Value`, `Deserialize`
//! maps a `Value` back. The companion `serde_json` shim renders and parses
//! `Value` as JSON text. The derive macros (`serde_derive`) generate the
//! same external-tagging layout real serde uses (unit variants as strings,
//! data variants as single-key objects), so files written by this shim are
//! byte-compatible with what the real `serde` + `serde_json` pair would
//! produce for the types in this repository.
//!
//! Only the API surface this workspace uses is provided. No `#[serde(...)]`
//! attributes, no generics on derived types, no zero-copy deserialization.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Serialization: convert `self` into the self-describing [`Value`] model.
pub trait Serialize {
    /// The `Value` representation of `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from `v`, or explain why the shape is wrong.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Construct from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Fetch a required struct field from an object body (derive-macro helper).
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
        arr.iter().map(T::deserialize).collect()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| {
                    DeError::custom(format!("expected tuple array, got {v:?}"))
                })?;
                let expect = [$($n),+].len();
                if arr.len() != expect {
                    return Err(DeError::custom(format!(
                        "expected {expect}-tuple, got {} elements", arr.len()
                    )));
                }
                Ok(($($t::deserialize(&arr[$n])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys (HashMap order is random).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
