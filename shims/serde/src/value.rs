//! The self-describing data model shared by the `serde` and `serde_json`
//! shims — structurally the JSON object model, with integers kept exact.

/// A JSON-model value.
///
/// Numbers keep their source flavour (`U64`/`I64`/`F64`) so integer fields
/// round-trip exactly and floats round-trip bit-identically (the printer
/// uses Rust's shortest-round-trip float formatting).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Finite floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else or missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `f64` (any number flavour).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) => i64::try_from(n).ok(),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (insertion-ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}
