//! Derive macros for the vendored `serde` substitute.
//!
//! Without `syn`/`quote` (offline build), the item is parsed directly from
//! the `proc_macro` token stream. Supported shapes — exactly what this
//! workspace derives on:
//!
//! * structs with named fields (no generics, no `#[serde(...)]` attrs)
//! * enums whose variants are unit, named-field, or tuple
//!
//! The generated layout matches real serde's external tagging: unit
//! variants serialize as strings, newtype variants as `{"Variant": inner}`,
//! tuple variants as `{"Variant": [..]}`, struct variants as
//! `{"Variant": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{body}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::field(__obj, \"{f}\")?)?,"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}: expected object\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect::<String>();
            let data_arms = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| deserialize_variant_arm(name, v))
                .collect::<String>();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: unknown unit variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __body) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"{name}: expected enum encoding, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

fn serialize_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(\
             ::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let body = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect::<String>();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Object(::std::vec![{body}]))]),"
            )
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
             ::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds = (0..*n)
                .map(|i| format!("__f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let body = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                .collect::<String>();
            format!(
                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{vname}\"), \
                 ::serde::Value::Array(::std::vec![{body}]))]),"
            )
        }
    }
}

fn deserialize_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled in the string arm"),
        VariantKind::Struct(fields) => {
            let body = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::field(__obj, \"{f}\")?)?,"
                    )
                })
                .collect::<String>();
            format!(
                "\"{vname}\" => {{\n\
                     let __obj = __body.as_object().ok_or_else(|| \
                         ::serde::DeError::custom(\"{name}::{vname}: expected object body\"))?;\n\
                     ::std::result::Result::Ok({name}::{vname} {{ {body} }})\n\
                 }}"
            )
        }
        VariantKind::Tuple(1) => format!(
            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
             ::serde::Deserialize::deserialize(__body)?)),"
        ),
        VariantKind::Tuple(n) => {
            let body = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?,"))
                .collect::<String>();
            format!(
                "\"{vname}\" => {{\n\
                     let __arr = __body.as_array().ok_or_else(|| \
                         ::serde::DeError::custom(\"{name}::{vname}: expected array body\"))?;\n\
                     if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"{name}::{vname}: wrong tuple arity\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{vname}({body}))\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (incl. doc comments): skip the bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip optional `pub(...)` restriction.
                if matches!(toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks, "struct name");
                let body = expect_brace(&mut toks, &name);
                return Item::Struct {
                    name,
                    fields: parse_named_fields(body),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks, "enum name");
                let body = expect_brace(&mut toks, &name);
                return Item::Enum {
                    name,
                    variants: parse_variants(body),
                };
            }
            other => panic!("serde_derive: unsupported item shape near {other:?}"),
        }
    }
}

fn expect_ident(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

fn expect_brace(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) -> TokenStream {
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported by the shim")
        }
        other => panic!(
            "serde_derive: `{name}` must have named fields / braced variants, found {other:?}"
        ),
    }
}

/// Parse `name: Type, ...` field lists, returning the field names.
/// Types are skipped wholesale (commas inside generic angle brackets and
/// nested groups are not separators), since the generated code never needs
/// to spell a type out.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if matches!(toks.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        toks.next();
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = toks.next() else { break };
        let TokenTree::Ident(field) = tt else {
            panic!("serde_derive: expected field name, found {tt:?}");
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, found {other:?}"),
        }
        fields.push(field.to_string());
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle: i64 = 0;
        for tt in toks.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        let Some(tt) = toks.next() else { break };
        let TokenTree::Ident(vname) = tt else {
            panic!("serde_derive: expected variant name, found {tt:?}");
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            kind,
        });
        // Consume the trailing comma, if any.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
    }
    variants
}

/// Count tuple-variant elements: top-level commas (outside `<...>`) + 1,
/// ignoring a trailing comma; 0 for an empty body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut angle: i64 = 0;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in body {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else {
        commas + 1 - usize::from(trailing_comma)
    }
}
