//! Minimal offline substitute for the `rand` crate.
//!
//! Provides the subset this workspace uses: a deterministic [`rngs::StdRng`]
//! seeded via `seed_from_u64`, and the [`Rng`] extension methods
//! `gen::<f64>()`, `gen_bool`, and `gen_range` over integer ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — different
//! numbers than the real `rand`'s ChaCha-based `StdRng`, but the workspace
//! only relies on *determinism per seed*, never on a specific stream.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw bits (the real crate's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable via `gen_range` (the real crate's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic workhorse RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 so similar seeds diverge.
            let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y: u8 = rng.gen_range(0..=4);
            assert!(y <= 4);
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
