//! Minimal offline substitute for `criterion`.
//!
//! Provides enough of the API for the workspace's `[[bench]]` targets to
//! build and produce honest wall-clock numbers: each benchmark runs a
//! short warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints median / mean / min per iteration. There is
//! no statistical regression machinery, HTML report, or CLI filtering.

use std::time::{Duration, Instant};

/// Opaque black box: defeats constant-folding of benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Configure the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into_benchmark_id(), self.sample_size, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.into_benchmark_id(), self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// A `function/input` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label of the form `function/parameter`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and iteration-count calibration: aim for samples of at
    // least ~5 ms, but never more than 1000 iterations per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "  {id:<40} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(samples_ns[0]),
        samples_ns.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a bench group runner (criterion API compatibility).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
