//! Minimal offline substitute for `parking_lot`.
//!
//! Wraps the std locks and strips lock poisoning, matching parking_lot's
//! headline API difference (`lock()`/`read()`/`write()` return guards
//! directly, no `Result`). Performance characteristics are std's, which is
//! fine for this workspace — the locks guard small in-memory caches.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock whose guard methods never return `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock whose guard methods never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
