//! End-to-end integration across the model pipeline, the dynamic-shape
//! machinery and the timeline scenario — the §V-C claims as invariants.

use models::{compile_model, zoo};
use simgpu::Tuner;

#[test]
fn fig9_ordering_holds_on_the_server() {
    // Gensor > Roller > PyTorch in throughput for every §V-C model.
    let spec = hardware::GpuSpec::rtx4090();
    for graph in [
        zoo::bert_small(8, 128),
        zoo::resnet50(32),
        zoo::mobilenet_v2(32),
    ] {
        let g = compile_model(&gensor::Gensor::default(), &graph, &spec);
        let r = compile_model(&roller::Roller::default(), &graph, &spec);
        let p = compile_model(&search::Eager, &graph, &spec);
        assert!(
            g.throughput >= r.throughput * 0.97,
            "{}: Gensor {} < Roller {}",
            graph.name,
            g.throughput,
            r.throughput
        );
        assert!(
            r.throughput > p.throughput,
            "{}: Roller {} <= PyTorch {}",
            graph.name,
            r.throughput,
            p.throughput
        );
    }
}

#[test]
fn fig9_ordering_holds_on_the_edge() {
    let spec = hardware::GpuSpec::orin_nano();
    for graph in [zoo::bert_small(1, 128), zoo::resnet50(8)] {
        let g = compile_model(&gensor::Gensor::default(), &graph, &spec);
        let r = compile_model(&roller::Roller::default(), &graph, &spec);
        let p = compile_model(&search::Eager, &graph, &spec);
        assert!(g.throughput >= r.throughput * 0.97, "{}", graph.name);
        assert!(g.throughput > p.throughput, "{}", graph.name);
    }
}

#[test]
fn gpt2_compiles_and_gensor_wins() {
    let spec = hardware::GpuSpec::rtx4090();
    let graph = zoo::gpt2(1, 512);
    let g = compile_model(&gensor::Gensor::default(), &graph, &spec);
    let p = compile_model(&search::Eager, &graph, &spec);
    assert!(g.throughput > 1.5 * p.throughput);
}

#[test]
fn dynamic_shapes_favor_construction() {
    // Fig. 11's structure: Gensor per-shape ≥ Roller per-shape; DietCode's
    // shared micro-kernel trails Gensor; PyTorch trails everyone.
    let spec = hardware::GpuSpec::rtx4090();
    let gensor = models::dynamic::run_per_shape(&gensor::Gensor::default(), 8, &spec);
    let roller = models::dynamic::run_per_shape(&roller::Roller::default(), 8, &spec);
    let eager = models::dynamic::run_per_shape(&search::Eager, 8, &spec);
    let dc = models::dynamic::run_dietcode(&search::DietCode::default(), 8, &spec);
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let g = avg(&gensor.throughputs());
    assert!(g > avg(&roller.throughputs()), "Gensor must beat Roller");
    assert!(
        g > avg(&eager.throughputs()) * 1.5,
        "Gensor must beat PyTorch clearly"
    );
    let dc_frac = avg(&dc.throughputs()) / g;
    assert!(
        (0.6..1.0).contains(&dc_frac),
        "DietCode should trail Gensor (paper: 83%), got {dc_frac:.2}"
    );
}

#[test]
fn fig12_gensor_has_shortest_total_time() {
    let spec = hardware::GpuSpec::rtx4090();
    let widths = [16u64, 12];
    let frames = 2000 * 128;
    let g = models::timeline::run_scenario(&gensor::Gensor::default(), &spec, &widths, frames, 128);
    let r = models::timeline::run_scenario(&roller::Roller::default(), &spec, &widths, frames, 128);
    let p = models::timeline::run_scenario(&search::Eager, &spec, &widths, frames, 128);
    assert!(
        g.total_s() < p.total_s(),
        "Gensor {:.1}s !< PyTorch {:.1}s",
        g.total_s(),
        p.total_s()
    );
    // The Gensor-vs-Roller total depends on honest wall-clock tuning time,
    // which only means something in an optimized build (debug-profile
    // construction is ~20x slower and swamps the inference savings).
    if !cfg!(debug_assertions) {
        assert!(
            g.total_s() < r.total_s() * 1.15,
            "Gensor {:.1}s should be within/below Roller {:.1}s",
            g.total_s(),
            r.total_s()
        );
    }
}

#[test]
fn tuning_time_scales_with_unique_shapes_not_launches() {
    // Compiling a model tunes each unique shape once; repeated layers are
    // free — the kernel-cache behaviour real deployments rely on.
    let spec = hardware::GpuSpec::rtx4090();
    let graph = zoo::resnet50(16);
    let cm = compile_model(&roller::Roller::default(), &graph, &spec);
    assert_eq!(cm.kernels.len(), graph.fused_layers().count());
    assert!(graph.total_launches() > graph.unique_ops() as u64);
}

#[test]
fn ablation_table6_shape_holds() {
    // Table VI: Roller ≤ Gensor w/o vThread ≤ Gensor on the suite-average
    // of the four ablation operators.
    let spec = hardware::GpuSpec::rtx4090();
    let suite = tensor_expr::benchmark_suite();
    let pick = |l: &str| suite.iter().find(|c| c.label == l).unwrap().op.clone();
    let ops = [pick("C1"), pick("M1"), pick("V1"), pick("P1")];
    let mut roller_sum = 0.0;
    let mut ablated_sum = 0.0;
    let mut full_sum = 0.0;
    for op in &ops {
        let norm = op.flops(); // normalize classes before averaging
        roller_sum += roller::Roller::default().compile(op, &spec).report.gflops / norm;
        ablated_sum += gensor::Gensor::without_vthread()
            .compile(op, &spec)
            .report
            .gflops
            / norm;
        full_sum += gensor::Gensor::default().compile(op, &spec).report.gflops / norm;
    }
    assert!(
        ablated_sum > roller_sum * 0.95,
        "graph construction must carry its weight"
    );
    assert!(full_sum >= ablated_sum * 0.98, "vThread must not hurt");
    assert!(
        full_sum > roller_sum,
        "full Gensor must beat Roller overall"
    );
}
