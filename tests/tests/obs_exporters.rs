//! Exporter-level integration tests for the `obs` crate: the Chrome
//! trace is well-formed and properly nested, the Prometheus text
//! round-trips through its own parser, tracing never perturbs tuner
//! output, and the convergence CSV carries a real walk.
//!
//! The collector and metric registry are process-global, so every test
//! that installs a collector serializes on [`OBS_LOCK`].

use hardware::GpuSpec;
use simgpu::Tuner;
use std::sync::{Arc, Mutex, OnceLock};
use tensor_expr::OpSpec;

/// Serializes tests that touch the global collector.
fn obs_lock() -> &'static Mutex<()> {
    static OBS_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    OBS_LOCK.get_or_init(|| Mutex::new(()))
}

/// Compile `op` with the ring collector installed; returns the events.
fn traced_compile(op: &OpSpec, chains_seed: u64) -> (simgpu::CompiledKernel, Vec<obs::Event>) {
    let spec = GpuSpec::rtx4090();
    let ring = Arc::new(obs::RingCollector::new(1 << 20));
    obs::install(ring.clone());
    let tuner = gensor::Gensor::single_chain(chains_seed);
    let ck = tuner.compile(op, &spec);
    let _ = verify::verify_schedule(&ck.etir, Some(&spec));
    let _ = codegen::emit_cuda(&ck.etir);
    obs::uninstall();
    (ck, ring.take())
}

#[test]
fn chrome_trace_parses_and_nests_the_compile_pipeline() {
    let _g = obs_lock().lock().unwrap_or_else(|p| p.into_inner());
    let (_, events) = traced_compile(&OpSpec::gemm(512, 256, 512), 11);
    let json = obs::chrome::trace_json(&events);
    let v: serde_json::Value = serde_json::from_str(&json).expect("trace must be valid JSON");
    let trace_events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!trace_events.is_empty());

    // Every complete event carries the fields Perfetto needs.
    let complete: Vec<&serde_json::Value> =
        trace_events.iter().filter(|e| e["ph"] == "X").collect();
    for e in &complete {
        assert!(e["name"].as_str().is_some(), "{e:?}");
        assert!(e["ts"].as_f64().is_some(), "{e:?}");
        assert!(e["dur"].as_f64().is_some(), "{e:?}");
        assert!(e["tid"].as_f64().is_some(), "{e:?}");
    }
    let span_of = |name: &str| {
        complete
            .iter()
            .find(|e| e["name"] == name)
            .unwrap_or_else(|| panic!("no '{name}' span in {json}"))
    };
    // tune encloses walk: same timeline semantics Perfetto renders as
    // nesting (walk starts at-or-after tune, ends at-or-before).
    let tune = span_of("tune");
    let walk = span_of("walk");
    let interval = |e: &serde_json::Value| {
        let ts = e["ts"].as_f64().unwrap();
        (ts, ts + e["dur"].as_f64().unwrap())
    };
    let (t0, t1) = interval(tune);
    let (w0, w1) = interval(walk);
    assert!(
        w0 >= t0 && w1 <= t1,
        "walk [{w0},{w1}] outside tune [{t0},{t1}]"
    );
    // The pipeline stages follow tuning. (Debug builds also run verify
    // *inside* the tune span — the tuner proves its winner legal — so
    // look for the first verify that starts after tuning ended.)
    let stage_after = |name: &str, after: f64| {
        complete
            .iter()
            .filter(|e| e["name"] == name)
            .map(|e| interval(e))
            .filter(|(s0, _)| *s0 >= after)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap_or_else(|| panic!("no '{name}' span after ts {after} in {json}"))
    };
    let (_, v1) = stage_after("verify", t1);
    let (c0, _) = stage_after("codegen.emit", v1);
    assert!(c0 >= v1, "codegen started before verification ended");
    // walk.step instants reference their enclosing walk span.
    let step = trace_events
        .iter()
        .find(|e| e["name"] == "walk.step" && e["ph"] == "i")
        .expect("walk.step instants");
    assert!(step["args"]["walk"].as_f64().is_some(), "{step:?}");
}

#[test]
fn prometheus_text_round_trips_through_its_parser() {
    let _g = obs_lock().lock().unwrap_or_else(|p| p.into_inner());
    let spec = GpuSpec::rtx4090();
    let tuner = gensor::Gensor::single_chain(5);
    let ck = tuner.compile(&OpSpec::gemv(1024, 512), &spec);
    let _ = verify::verify_schedule(&ck.etir, Some(&spec));
    let h = obs::histogram_us("gensor_test_roundtrip_us", "round-trip fixture");
    h.record_us(120);
    h.record_us(90_000);

    let text = obs::prometheus::render();
    let samples = obs::prometheus::parse_samples(&text);
    assert!(!samples.is_empty());

    // Counters written by the instrumented crates survive the round trip.
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .unwrap_or_else(|| panic!("no sample '{name}' in:\n{text}"))
            .value
    };
    assert!(get("gensor_core_compiles_total") >= 1.0);
    assert!(get("gensor_core_walk_steps_total") >= 1.0);
    assert!(get("gensor_verify_runs_total") >= 1.0);
    // Histogram exposition is cumulative and consistent.
    let count = get("gensor_test_roundtrip_us_count");
    assert!(count >= 2.0);
    let inf = samples
        .iter()
        .find(|s| s.name == "gensor_test_roundtrip_us_bucket" && s.labels.contains("le=\"+Inf\""))
        .expect("+Inf bucket");
    assert_eq!(inf.value, count, "+Inf bucket must equal _count");
    let mut last = 0.0;
    for s in samples
        .iter()
        .filter(|s| s.name == "gensor_test_roundtrip_us_bucket")
    {
        assert!(s.value >= last, "buckets must be cumulative:\n{text}");
        last = s.value;
    }
}

#[test]
fn tracing_never_changes_the_tuner_output() {
    let _g = obs_lock().lock().unwrap_or_else(|p| p.into_inner());
    let spec = GpuSpec::rtx4090();
    // A spread of shapes/classes; same seed with and without the
    // collector must construct the identical schedule (the instrumented
    // walk must not consume extra RNG draws or reorder decisions).
    let ops = [
        OpSpec::gemm(512, 256, 512),
        OpSpec::gemm(4096, 64, 128),
        OpSpec::gemv(2048, 1024),
        OpSpec::conv2d(4, 16, 28, 28, 32, 3, 3, 1, 1),
        OpSpec::elementwise(1 << 16, 2, 1),
    ];
    for (i, op) in ops.iter().enumerate() {
        let seed = 100 + i as u64;
        obs::uninstall();
        let quiet = gensor::Gensor::single_chain(seed).compile(op, &spec);
        let ring = Arc::new(obs::RingCollector::new(1 << 20));
        obs::install(ring.clone());
        let traced = gensor::Gensor::single_chain(seed).compile(op, &spec);
        obs::uninstall();
        assert_eq!(
            quiet.etir,
            traced.etir,
            "tracing changed the schedule for {} (seed {seed})",
            op.label()
        );
        assert_eq!(quiet.report.time_us, traced.report.time_us);
        assert!(
            ring.take().iter().any(|e| e.kind.name() == "walk.step"),
            "traced run recorded no walk steps for {}",
            op.label()
        );
    }
}

#[test]
fn convergence_csv_reproduces_a_walk_trace() {
    let _g = obs_lock().lock().unwrap_or_else(|p| p.into_inner());
    let (_, events) = traced_compile(&OpSpec::gemm(1024, 512, 1024), 23);
    let csv = obs::convergence::walk_csv(&events);
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some(obs::convergence::CSV_HEADER));
    let rows: Vec<&str> = lines.collect();
    assert!(!rows.is_empty(), "no walk steps in:\n{csv}");
    let mut best_prev = f64::INFINITY;
    let mut last_step = -1i64;
    for row in &rows {
        // CSV-quoted action cells may contain commas; strip them before
        // splitting so the column count is stable.
        let mut clean = String::new();
        let mut in_quotes = false;
        for ch in row.chars() {
            match ch {
                '"' => in_quotes = !in_quotes,
                ',' if in_quotes => {}
                c => clean.push(c),
            }
        }
        let cols: Vec<&str> = clean.split(',').collect();
        assert_eq!(cols.len(), 11, "bad row '{row}'");
        let step: i64 = cols[1].parse().expect("step");
        assert!(step > last_step, "steps must be ordered: '{row}'");
        last_step = step;
        // The training-data columns: a non-empty source state, a positive
        // exact-eval count, and a parseable pruned flag.
        assert!(!cols[8].is_empty(), "missing state column: '{row}'");
        let evals: u64 = cols[9].parse().expect("exact_evals");
        assert!(evals > 0, "no exact evals recorded: '{row}'");
        let _pruned: bool = cols[10].parse().expect("pruned");
        let prob: f64 = cols[4].parse().expect("probability");
        assert!(
            (0.0..=1.0).contains(&prob),
            "probability out of range: '{row}'"
        );
        let temp: f64 = cols[5].parse().expect("temperature");
        assert!(temp > 0.0, "temperature must stay positive: '{row}'");
        let best: f64 = if cols[7] == "inf" {
            f64::INFINITY
        } else {
            cols[7].parse().expect("best_time_us")
        };
        assert!(
            best <= best_prev,
            "best-so-far must be monotonically non-increasing: '{row}'"
        );
        best_prev = best;
    }
    // The walk found something: the final best is finite.
    assert!(best_prev.is_finite(), "walk never improved:\n{csv}");
}
