//! Cross-crate integration: every method × every suite operator × both
//! evaluation devices, checking the invariants the paper's conclusions
//! rest on.

use simgpu::Tuner;

fn methods() -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(search::VendorLib),
        Box::new(search::Eager),
        Box::new(roller::Roller::default()),
        Box::new(gensor::Gensor::default()),
    ]
}

#[test]
fn every_method_compiles_the_whole_suite_on_both_devices() {
    for spec in [hardware::GpuSpec::rtx4090(), hardware::GpuSpec::orin_nano()] {
        for cfg in tensor_expr::benchmark_suite() {
            for t in methods() {
                let ck = t.compile(&cfg.op, &spec);
                assert!(
                    ck.report.time_us.is_finite() && ck.report.time_us > 0.0,
                    "{} on {} via {}",
                    cfg.label,
                    spec.name,
                    t.name()
                );
                // Winners must be launchable: full hardware check.
                assert!(
                    etir::analytics::MemCheck::check(&ck.etir, &spec).fits(),
                    "{} on {} via {} chose unlaunchable schedule {}",
                    cfg.label,
                    spec.name,
                    t.name(),
                    ck.etir.describe()
                );
                // Nobody may exceed the device peak.
                assert!(ck.report.gflops <= spec.peak_fp32_gflops * 1.31); // vendor expert factor
            }
        }
    }
}

#[test]
fn gensor_dominates_roller_on_suite_average() {
    // The paper's headline (§V-A): ≈18% average FLOPS improvement over
    // Roller, max ≈30% (ours lands higher on GEMV). We assert the
    // direction and a sane band.
    let spec = hardware::GpuSpec::rtx4090();
    let gensor = gensor::Gensor::default();
    let roller = roller::Roller::default();
    let mut ratios = Vec::new();
    for cfg in tensor_expr::benchmark_suite() {
        let g = gensor.compile(&cfg.op, &spec).report.gflops;
        let r = roller.compile(&cfg.op, &spec).report.gflops;
        ratios.push(g / r);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    assert!(avg > 1.10, "suite average Gensor/Roller = {avg:.3}");
    assert!(min > 0.55, "worst-case Gensor/Roller = {min:.3}");
}

#[test]
fn construction_is_orders_faster_than_search() {
    let spec = hardware::GpuSpec::rtx4090();
    let op = tensor_expr::OpSpec::gemm(4096, 4096, 4096);
    let g = gensor::Gensor::default().compile(&op, &spec);
    let r = roller::Roller::default().compile(&op, &spec);
    let a = search::Ansor::default().compile(&op, &spec);
    // Roller ≤ Gensor ≪ Ansor (Fig. 8's ordering).
    assert!(r.total_tuning_s() <= g.total_tuning_s());
    assert!(
        a.total_tuning_s() > 100.0 * g.total_tuning_s(),
        "Ansor {} vs Gensor {}",
        a.total_tuning_s(),
        g.total_tuning_s()
    );
    // Construction methods never touch the measurement clock.
    assert_eq!(g.simulated_tuning_s, 0.0);
    assert_eq!(r.simulated_tuning_s, 0.0);
}

#[test]
fn chosen_schedules_compute_correct_results() {
    // Shrink each operator class to an interp-friendly size, compile with
    // each method, and execute the chosen schedule against the naive
    // reference.
    let spec = hardware::GpuSpec::rtx4090();
    let ops = [
        tensor_expr::OpSpec::gemm(48, 24, 40),
        tensor_expr::OpSpec::gemv(96, 48),
        tensor_expr::OpSpec::conv2d(2, 6, 12, 12, 8, 3, 3, 2, 1),
        tensor_expr::OpSpec::avg_pool2d(2, 6, 12, 12, 2, 2),
        tensor_expr::OpSpec::elementwise(200, 2, 1),
    ];
    for op in &ops {
        for t in methods() {
            let ck = t.compile(op, &spec);
            interp::check_schedule(&ck.etir);
        }
    }
}

#[test]
fn vthread_only_gensor_uses_vthreads() {
    let spec = hardware::GpuSpec::rtx4090();
    let op = tensor_expr::OpSpec::gemm(4096, 512, 4096);
    for t in methods() {
        let ck = t.compile(&op, &spec);
        let uses_vt = ck.etir.vthreads.iter().any(|&v| v > 1);
        if t.name() != "Gensor" {
            assert!(!uses_vt, "{} should not use vThreads", t.name());
        }
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let spec = hardware::GpuSpec::orin_nano();
    let op = tensor_expr::OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1);
    for t in methods() {
        let a = t.compile(&op, &spec);
        let b = t.compile(&op, &spec);
        assert_eq!(a.etir, b.etir, "{} is nondeterministic", t.name());
        assert_eq!(a.report, b.report);
    }
}

#[test]
fn edge_device_consistently_slower_than_server() {
    let server = hardware::GpuSpec::rtx4090();
    let edge = hardware::GpuSpec::orin_nano();
    let gensor = gensor::Gensor::default();
    for cfg in tensor_expr::benchmark_suite().into_iter().take(8) {
        let s = gensor.compile(&cfg.op, &server).report.time_us;
        let e = gensor.compile(&cfg.op, &edge).report.time_us;
        assert!(e > s, "{}: edge {} !> server {}", cfg.label, e, s);
    }
}

#[test]
fn stack_generalizes_to_a100() {
    // Not an evaluation device of the paper; guards against over-fitting
    // the policies to the two presets.
    let spec = hardware::GpuSpec::a100();
    let op = tensor_expr::OpSpec::gemm(8192, 8192, 8192);
    let g = gensor::Gensor::default().compile(&op, &spec);
    let r = roller::Roller::default().compile(&op, &spec);
    assert!(
        g.report.gflops > 0.15 * spec.peak_fp32_gflops,
        "{}",
        g.report.gflops
    );
    assert!(g.report.gflops >= 0.8 * r.report.gflops);
}
