//! The fabric chaos drill: three in-process daemons on loopback TCP act
//! as one schedule cache, one is "SIGKILL'd" mid-batch by a failpoint in
//! its accept loop, and the batch still completes with verifier-clean
//! schedules — the ring reroutes the dead node's keys to the survivors.
//!
//! Also here: the token-auth handshake contract (satellite of the same
//! PR) — a bad token is refused with a *typed* error, never a silent
//! retry or downgrade.

use fabric::{cluster_status, FabricClient};
use hardware::GpuSpec;
use served::{
    BreakerConfig, BreakerState, Client, ClientConfig, ClientError, DrainReport, ErrKind,
    MethodRegistry, Server, ServerConfig, ServerHandle,
};
use simgpu::Tuner;
use std::sync::Arc;
use std::time::Duration;
use tensor_expr::OpSpec;

/// Boot a daemon on a kernel-assigned loopback TCP port; returns the
/// resolved endpoint, a shutdown handle, and the drain-report join.
fn start_tcp(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (String, ServerHandle, std::thread::JoinHandle<DrainReport>) {
    let mut cfg = ServerConfig::new("tcp://127.0.0.1:0");
    cfg.workers = 4;
    cfg.max_inflight = 16;
    tweak(&mut cfg);
    let cache = Arc::new(schedcache::ScheduleCache::in_memory());
    let server = Server::bind(cfg, cache, MethodRegistry::standard()).unwrap();
    let endpoint = server.endpoint().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (endpoint, handle, join)
}

/// Fail fast when a peer is down; the drill depends on quick failover.
fn fast_client() -> ClientConfig {
    ClientConfig {
        retries: 1,
        connect_timeout: Duration::from_millis(300),
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    }
}

/// One transport failure opens the circuit (and keeps it open for the
/// rest of the test, so the dead node stays out of the ring).
fn hair_trigger() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 1,
        cooldown: Duration::from_secs(60),
        max_cooldown: Duration::from_secs(60),
    }
}

#[test]
fn three_daemon_batch_survives_a_mid_batch_crash() {
    let crash_site = "fabric.cluster.crash";
    let (ep_a, handle_a, join_a) = start_tcp(|_| {});
    let (ep_b, _handle_b, join_b) = start_tcp(|cfg| {
        cfg.crash_site = Some(crash_site.to_string());
    });
    let (ep_c, handle_c, join_c) = start_tcp(|_| {});
    let peers = vec![ep_a.clone(), ep_b.clone(), ep_c.clone()];

    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(&peers, "roller", None, &fallback)
        .with_config(fast_client())
        .with_breaker(hair_trigger());

    let spec = GpuSpec::rtx4090();
    let ops: Vec<OpSpec> = (0..20)
        .map(|i| OpSpec::gemm(64 + 16 * i, 64, 128))
        .collect();

    // First half of the batch against the healthy cluster…
    let mut kernels = Vec::new();
    for op in &ops[..8] {
        kernels.push((op.clone(), fabric.compile(op, &spec)));
    }
    assert_eq!(fabric.report().remote, 8, "healthy cluster answers remote");

    // …then the simulated SIGKILL: the failpoint fires in B's accept
    // loop, which drops the listener and abandons every connection
    // without a goodbye. Joining its thread makes the kill deterministic.
    faults::arm(crash_site, faults::Policy::ErrFrom(1));
    let report_b = join_b.join().unwrap();
    faults::disarm(crash_site);
    assert_eq!(report_b.reason, "crash");

    // The rest of the batch must complete remote-only: keys whose
    // primary died fail over to a replica, B's breaker opens, and the
    // ring rebuild routes around the corpse.
    for op in &ops[8..] {
        kernels.push((op.clone(), fabric.compile(op, &spec)));
    }
    let r = fabric.report();
    assert_eq!(r.remote, 20, "every compile answered by a live daemon");
    assert_eq!(r.local, 0, "no compile fell back local: {r:?}");
    assert!(
        fabric
            .membership()
            .breakers()
            .open_endpoints()
            .contains(&ep_b),
        "the dead node's breaker must be open"
    );
    assert!(
        !fabric.membership().ring().nodes().contains(&ep_b),
        "the dead node must be out of the routing ring"
    );

    // Every schedule in the batch is verifier-clean.
    for (op, kernel) in &kernels {
        let report = verify::verify_schedule(&kernel.etir, Some(&spec));
        assert!(report.is_legal(), "illegal schedule for {}", op.label());
    }

    // `cluster status` sees the outage: 2 of 3 up, the corpse DOWN.
    let status = cluster_status(&peers, &fast_client());
    assert_eq!((status.up, status.total), (2, 3));
    let dead = status.peers.iter().find(|p| p.endpoint == ep_b).unwrap();
    assert!(!dead.up);
    assert!(dead.error.is_some());
    assert!(status.render().contains("DOWN"));

    handle_a.shutdown();
    handle_c.shutdown();
    join_a.join().unwrap();
    join_c.join().unwrap();
}

#[test]
fn write_through_replicates_to_the_replica_set() {
    let (ep_a, handle_a, join_a) = start_tcp(|_| {});
    let (ep_b, handle_b, join_b) = start_tcp(|_| {});
    let peers = vec![ep_a.clone(), ep_b.clone()];

    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(&peers, "roller", None, &fallback).with_config(fast_client());
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(384, 128, 256);
    let _ = fabric.compile(&op, &spec);
    let r = fabric.report();
    assert_eq!(r.remote, 1);
    assert_eq!(r.repairs, 1, "the non-primary replica was missing the key");

    // Both daemons now hold the kernel: a probe (which never compiles)
    // answers cached on each.
    for ep in &peers {
        let mut c = Client::connect_with(ep.as_str(), fast_client()).unwrap();
        assert!(
            c.probe(&op, &spec, "roller").unwrap(),
            "{ep} is missing the replicated kernel"
        );
    }

    // A second compile of the same op is a pure cache hit somewhere.
    let _ = fabric.compile(&op, &spec);
    let r = fabric.report();
    assert_eq!(r.hits, 1, "{r:?}");

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().unwrap();
    join_b.join().unwrap();
}

#[test]
fn tampered_remote_schedule_is_rejected_at_the_trust_boundary() {
    // Two daemons; the `served.reply.tamper` failpoint corrupts exactly
    // one outgoing schedule *after* the answering daemon's own verify
    // gate passed it — the wire frame stays well-formed, so only the
    // fabric's cross-boundary re-verification can catch it.
    let site = "served.reply.tamper";
    let (ep_a, handle_a, join_a) = start_tcp(|_| {});
    let (ep_b, handle_b, join_b) = start_tcp(|_| {});
    let peers = vec![ep_a.clone(), ep_b.clone()];

    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(&peers, "roller", None, &fallback)
        .with_config(fast_client())
        .with_breaker(hair_trigger());
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(320, 128, 256);

    faults::arm(site, faults::Policy::ErrNth(1));
    let kernel = fabric.compile(&op, &spec);
    let tampered = faults::hits(site);
    faults::disarm(site);

    assert_eq!(tampered, 1, "the primary's reply was corrupted");
    let r = fabric.report();
    assert_eq!(
        r.rejected, 1,
        "the verifier refused the tampered schedule at the boundary: {r:?}"
    );
    assert_eq!(
        (r.remote, r.local, r.failovers),
        (1, 0, 1),
        "the compile failed over to the honest replica, never local: {r:?}"
    );
    assert!(
        verify::verify_schedule(&kernel.etir, Some(&spec)).is_legal(),
        "the kernel actually returned is verifier-clean"
    );
    // A content rejection is the peer's *answer*, not its absence: the
    // tampering peer stays in the ring with a closed breaker.
    for ep in &peers {
        assert_eq!(
            fabric.membership().breaker(ep).state(),
            BreakerState::Closed,
            "content rejection must not trip {ep}'s breaker"
        );
    }

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().unwrap();
    join_b.join().unwrap();
}

#[test]
fn bad_token_is_refused_typed_and_never_silently_downgraded() {
    let (ep, handle, join) = start_tcp(|cfg| {
        cfg.token = Some("open-sesame".to_string());
    });

    // No token at all: typed refusal.
    let err = Client::connect_with(ep.as_str(), fast_client()).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Remote {
                kind: ErrKind::Unauthorized,
                ..
            }
        ),
        "expected a typed Unauthorized, got {err:?}"
    );

    // Wrong token: same typed refusal — no retry loop, no downgrade.
    let wrong = ClientConfig {
        token: Some("let-me-in".to_string()),
        ..fast_client()
    };
    let err = Client::connect_with(ep.as_str(), wrong).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Remote {
            kind: ErrKind::Unauthorized,
            ..
        }
    ));

    // Right token: the handshake completes and the connection works.
    let right = ClientConfig {
        token: Some("open-sesame".to_string()),
        ..fast_client()
    };
    let mut client = Client::connect_with(ep.as_str(), right.clone()).unwrap();
    client.ping().unwrap();

    // An auth refusal must not be mistaken for a dead daemon: the
    // fabric's breaker treats it as proof of life, so the misconfigured
    // client keeps its circuit closed (and logs loudly) instead of
    // quietly writing the peer off.
    let fallback = roller::Roller::default();
    let peers = vec![ep.clone()];
    let fabric = FabricClient::new(&peers, "roller", None, &fallback)
        .with_config(ClientConfig {
            token: Some("still-wrong".to_string()),
            ..fast_client()
        })
        .with_breaker(hair_trigger());
    let spec = GpuSpec::rtx4090();
    let kernel = fabric.compile(&OpSpec::gemm(128, 64, 128), &spec);
    assert!(verify::verify_schedule(&kernel.etir, Some(&spec)).is_legal());
    let r = fabric.report();
    assert_eq!((r.remote, r.local), (0, 1), "{r:?}");
    assert_eq!(
        fabric.membership().breaker(&ep).state(),
        BreakerState::Closed,
        "an Unauthorized reply is proof of life, not a transport failure"
    );

    handle.shutdown();
    join.join().unwrap();
}
