//! The self-healing drill: kill a daemon mid-batch, watch the SWIM
//! detector confirm it dead, restart it cold on the *same* port, and
//! watch the cluster heal — membership converges back to all-alive,
//! anti-entropy repair rebuilds the wiped cache to digest equality,
//! hinted handoff replays the writes it missed, and every repaired
//! kernel passed the `RemotePeer` provenance gate on the way in.
//!
//! Also here, the cross-version and crash-safety satellites:
//! * a v6 client still compiles against a v7 daemon, and a daemon with
//!   no gossip agent answers the gossip frames with empty (disabled,
//!   not broken);
//! * a v7 client against an old server gates every self-heal method
//!   locally with a typed `UnsupportedProto` — nothing hits the wire;
//! * hint-log torn tails truncate to exactly the intact prefix
//!   (proptest over every cut point), and take/requeue interleavings
//!   deliver each hint exactly once.

use fabric::{Detector, FabricClient, GossipConfig, HintLog, MemberState, MemberTable};
use hardware::GpuSpec;
use proptest::prelude::*;
use served::proto::{read_frame, write_frame};
use served::{
    BreakerConfig, Client, ClientConfig, ClientError, DrainReport, ErrKind, MethodRegistry,
    Request, Response, Server, ServerConfig, ServerHandle,
};
use simgpu::Tuner;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor_expr::OpSpec;

/// Bind (but do not yet run) a daemon over the given cache, so the
/// test can learn every endpoint before wiring the membership tables.
fn bind_daemon(
    addr: &str,
    cache: Arc<schedcache::ScheduleCache>,
    crash_site: Option<&str>,
) -> Server {
    let mut cfg = ServerConfig::new(addr);
    cfg.workers = 4;
    cfg.max_inflight = 16;
    cfg.crash_site = crash_site.map(String::from);
    Server::bind(cfg, cache, MethodRegistry::standard()).unwrap()
}

/// Attach a fresh gossip table for the full peer list and start serving.
fn launch(
    server: Server,
    peers: &[String],
) -> (
    Arc<MemberTable>,
    ServerHandle,
    std::thread::JoinHandle<DrainReport>,
) {
    let me = server.endpoint().to_string();
    let table = MemberTable::new(&me, peers);
    server.attach_cluster(table.clone());
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (table, handle, join)
}

/// Probe policy for test detectors: fail fast, confirm a suspect on the
/// very next sweep (zero suspicion timeout), repair only on
/// startup/rejoin so every anti-entropy pass in the drill is explicit.
fn detector_cfg() -> GossipConfig {
    GossipConfig {
        interval: Duration::from_millis(10),
        suspicion_timeout: Duration::ZERO,
        indirect_probes: 2,
        repair_every: 0,
        client: ClientConfig {
            connect_timeout: Duration::from_millis(200),
            request_timeout: Duration::from_millis(2_000),
            retries: 1,
            backoff_base: Duration::from_millis(1),
            connect_budget: Duration::from_millis(300),
            ..Default::default()
        },
    }
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        retries: 1,
        connect_timeout: Duration::from_millis(300),
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    }
}

fn state_of(t: &MemberTable, ep: &str) -> Option<MemberState> {
    t.snapshot()
        .into_iter()
        .find(|(e, _)| e == ep)
        .map(|(_, i)| i.state)
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gensor-selfheal-{}-{name}.jsonl",
        std::process::id()
    ))
}

/// The acceptance drill from the issue, end to end.
#[test]
fn kill_restart_rejoin_heals_the_cluster() {
    let crash_site = "fabric.selfheal.crash";
    let cache_a = Arc::new(schedcache::ScheduleCache::in_memory());
    let cache_b = Arc::new(schedcache::ScheduleCache::in_memory());
    let cache_c = Arc::new(schedcache::ScheduleCache::in_memory());

    let srv_a = bind_daemon("tcp://127.0.0.1:0", cache_a.clone(), None);
    let srv_b = bind_daemon("tcp://127.0.0.1:0", cache_b.clone(), Some(crash_site));
    let srv_c = bind_daemon("tcp://127.0.0.1:0", cache_c.clone(), None);
    let ep_a = srv_a.endpoint().to_string();
    let ep_b = srv_b.endpoint().to_string();
    let ep_c = srv_c.endpoint().to_string();
    let peers = vec![ep_a.clone(), ep_b.clone(), ep_c.clone()];

    let (table_a, handle_a, join_a) = launch(srv_a, &peers);
    let (_table_b, _handle_b, join_b) = launch(srv_b, &peers);
    let (table_c, handle_c, join_c) = launch(srv_c, &peers);

    let det_a = Detector::new(table_a.clone(), detector_cfg()).with_cache(cache_a.clone());
    let det_c = Detector::new(table_c.clone(), detector_cfg()).with_cache(cache_c.clone());

    // Round zero: everyone probes everyone, nobody is suspect, and the
    // startup anti-entropy pass over three empty caches is a no-op.
    det_a.tick();
    det_c.tick();
    assert!(table_a.dead_peers().is_empty());
    assert!(table_c.dead_peers().is_empty());

    let fallback = roller::Roller::default();
    let hint_path = tmp_path("drill");
    std::fs::remove_file(&hint_path).ok();
    let hints = Arc::new(HintLog::open(&hint_path, 64).unwrap());
    // Short cooldown: the drill wants the breaker to half-open (and the
    // hint replay to go through) within the test's patience, not 60s.
    let fabric = FabricClient::new(&peers, "roller", None, &fallback)
        .with_config(fast_client())
        .with_breaker(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(200),
            max_cooldown: Duration::from_millis(400),
        })
        .with_replicas(2)
        .with_hints(hints.clone())
        .with_gossip(table_a.clone());

    let spec = GpuSpec::rtx4090();
    let ops: Vec<OpSpec> = (0..20)
        .map(|i| OpSpec::gemm(64 + 16 * i, 64, 128))
        .collect();

    // Healthy first half: every compile lands on some daemon and
    // write-through replicates it to its backup.
    for op in &ops[..8] {
        fabric.compile(op, &spec);
    }
    assert_eq!(fabric.report().local, 0, "healthy cluster: all remote");

    // Kill B mid-batch: the failpoint crashes its accept loop on the
    // next connection it sees.
    faults::arm(crash_site, faults::Policy::ErrFrom(1));
    for op in &ops[8..] {
        fabric.compile(op, &spec);
    }
    let report_b = join_b.join().unwrap();
    assert_eq!(report_b.reason, "crash", "B really died mid-batch");
    faults::disarm(crash_site);

    // Clean failover only: the survivors answered everything, and the
    // writes B missed are queued as hints rather than dropped. Roughly
    // two thirds of the keys have B in their replica set, so twelve
    // post-crash compiles cannot all have missed it.
    let mid = fabric.report();
    assert_eq!(mid.local, 0, "no compile fell back local during the kill");
    assert_eq!(mid.rejected, 0, "every remote kernel passed the verifier");
    assert!(mid.hints_queued >= 1, "B's missed writes queued: {mid:?}");
    assert!(!hints.is_empty());

    // One detector round confirms the death: the direct probe fails, no
    // relay can vouch, and the zero suspicion timeout lets the same
    // tick's sweep promote suspect -> dead.
    det_a.tick();
    det_c.tick();
    assert_eq!(
        table_a.dead_peers(),
        vec![ep_b.clone()],
        "A confirmed B dead"
    );
    assert_eq!(
        table_c.dead_peers(),
        vec![ep_b.clone()],
        "C confirmed B dead"
    );
    assert!(
        !fabric.membership().live_peers().contains(&ep_b),
        "confirmed death evicts B from the routing ring"
    );

    // Compiles keep flowing with B's key range remapped to the others.
    for op in &ops[..4] {
        fabric.compile(op, &spec);
    }
    assert_eq!(fabric.report().local, 0);

    // Cold restart on the SAME endpoint (SO_REUSEADDR makes the rebind
    // immediate) with a WIPED cache — the worst-case rejoin.
    let cache_b2 = Arc::new(schedcache::ScheduleCache::in_memory());
    let deadline = Instant::now() + Duration::from_secs(5);
    let srv_b2 = loop {
        let mut cfg = ServerConfig::new(&ep_b);
        cfg.workers = 4;
        cfg.max_inflight = 16;
        match Server::bind(cfg, cache_b2.clone(), MethodRegistry::standard()) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
                let _ = e;
            }
            Err(e) => panic!("could not rebind {ep_b}: {e}"),
        }
    };
    assert_eq!(srv_b2.endpoint().to_string(), ep_b);
    let (table_b2, handle_b2, join_b2) = launch(srv_b2, &peers);
    let det_b2 = Detector::new(table_b2.clone(), detector_cfg()).with_cache(cache_b2.clone());

    // B's first tick runs its startup anti-entropy pass: it pulls the
    // union of the survivors' caches into its empty one. A's and C's
    // next probes see B answering again — a rejoin — which triggers
    // their own repair pass, converging everyone on the union.
    det_b2.tick();
    assert!(cache_b2.digest().count > 0, "startup sync repopulated B");
    det_a.tick();
    det_c.tick();
    det_b2.tick();
    det_a.tick();
    det_c.tick();
    assert!(table_a.dead_peers().is_empty(), "A sees B alive again");
    assert!(table_c.dead_peers().is_empty(), "C sees B alive again");
    assert_eq!(state_of(&table_a, &ep_b), Some(MemberState::Alive));
    // Gossip has cleared B; the breaker readmits it once the cooldown it
    // set at death time runs out — recovery is metered by design, so
    // give it that window rather than racing it.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !fabric.membership().live_peers().contains(&ep_b) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        fabric.membership().live_peers().contains(&ep_b),
        "rejoin restores B to the routing ring"
    );

    // Digest equality: all three daemons hold the same fingerprint set.
    let (da, db, dc) = (cache_a.digest(), cache_b2.digest(), cache_c.digest());
    assert!(da.count > 0);
    assert_eq!(da, db, "A and restarted B converged");
    assert_eq!(da, dc, "A and C converged");

    // Provenance: everything repair installed into B went through the
    // verifier at the RemotePeer trust boundary and passed.
    assert_eq!(
        cache_b2.stats().verifier_rejected,
        0,
        "no repaired kernel was refused (they are all legal)"
    );

    // Hinted handoff drains: once B's breaker lets a probe through, the
    // queued writes replay (idempotent puts — repair may have beaten
    // them to it, which is fine).
    let deadline = Instant::now() + Duration::from_secs(10);
    while !hints.is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        fabric.replay_hints();
    }
    assert!(hints.is_empty(), "hint queue drained to zero");
    let done = fabric.report();
    assert!(done.hints_replayed >= 1, "replays counted: {done:?}");
    assert_eq!(done.local, 0, "end to end, no compile fell back local");
    assert_eq!(done.rejected, 0);

    // The healed cluster still answers.
    fabric.compile(&OpSpec::gemm(96, 96, 96), &spec);
    assert_eq!(fabric.report().local, 0);

    handle_a.shutdown();
    handle_b2.shutdown();
    handle_c.shutdown();
    join_a.join().unwrap();
    join_b2.join().unwrap();
    join_c.join().unwrap();
    std::fs::remove_file(&hint_path).ok();
}

/// A v6 client against a v7 daemon: the handshake settles on v6, plain
/// compiles keep working, and a daemon with no gossip agent attached
/// answers the v7 gossip frames with *empty* — disabled, not broken.
#[test]
fn a_v6_client_still_compiles_and_gossip_is_cleanly_disabled() {
    let cache = Arc::new(schedcache::ScheduleCache::in_memory());
    let server = bind_daemon("tcp://127.0.0.1:0", cache, None);
    let endpoint = server.endpoint().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    // Hand-speak the wire as a v6 client: Hello pins the version.
    let addr = endpoint.strip_prefix("tcp://").unwrap();
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            proto: 6,
            token: None,
        },
    )
    .unwrap();
    let hello: Response = read_frame(&mut stream).unwrap();
    assert!(
        matches!(hello, Response::Hello { proto: 6 }),
        "server speaks the lower version: {hello:?}"
    );
    write_frame(
        &mut stream,
        &Request::Compile {
            op: OpSpec::gemm(128, 64, 64),
            gpu: GpuSpec::rtx4090(),
            method: "roller".into(),
            budget: None,
        },
    )
    .unwrap();
    let answer: Response = read_frame(&mut stream).unwrap();
    match answer {
        Response::Compiled { kernel, .. } => {
            let verdict = verify::verify_schedule(&kernel.etir, None);
            assert!(verdict.is_legal(), "old client got a real, legal kernel");
        }
        other => panic!("v6 compile answered {other:?}"),
    }
    drop(stream);

    // A v7 client against the same daemon: it has no cluster agent, so
    // gossip and membership answer empty rather than erroring.
    let mut c = Client::connect_with(&endpoint, fast_client()).unwrap();
    assert!(c.supports_selfheal());
    assert!(c.members().unwrap().is_empty(), "no agent: empty view");
    let acked = c.gossip("tcp://127.0.0.1:9999", 0, vec![]).unwrap();
    assert!(acked.is_empty(), "no agent: empty gossip ack");
    drop(c);

    handle.shutdown();
    join.join().unwrap();
}

/// A v7 client against an old (v6) server: every self-heal method is
/// refused *locally* with the typed `UnsupportedProto` — no frame the
/// old server could mis-parse ever touches the wire — and the repair
/// pass records the peer as pre-v7 instead of failing.
#[test]
fn a_v7_client_against_an_old_server_gates_selfheal_locally() {
    // A fake v6 daemon: handshakes at proto 6, answers pings, and would
    // choke on anything newer (which must therefore never arrive).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let endpoint = format!("tcp://{}", listener.local_addr().unwrap());
    let fake = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let mut stream = stream.unwrap();
            while let Ok(req) = read_frame::<_, Request>(&mut stream) {
                let answer = match req {
                    Request::Hello { .. } => Response::Hello { proto: 6 },
                    Request::Ping => Response::Pong,
                    other => panic!("v7-only frame leaked to the old server: {other:?}"),
                };
                write_frame(&mut stream, &answer).unwrap();
            }
        }
    });

    let mut c = Client::connect_with(&endpoint, fast_client()).unwrap();
    assert_eq!(c.proto(), 6);
    assert!(!c.supports_selfheal());
    for err in [
        c.cache_digest().map(|_| ()).unwrap_err(),
        c.members().map(|_| ()).unwrap_err(),
        c.gossip("tcp://x", 0, vec![]).map(|_| ()).unwrap_err(),
        c.ping_req("tcp://x").map(|_| ()).unwrap_err(),
    ] {
        match err {
            ClientError::Remote { kind, .. } => assert_eq!(kind, ErrKind::UnsupportedProto),
            other => panic!("expected a typed local refusal, got {other:?}"),
        }
    }
    drop(c);

    // Anti-entropy against the old peer: skipped and counted, no error.
    let cache = schedcache::ScheduleCache::in_memory();
    let report = fabric::sync_from_peers(&cache, std::slice::from_ref(&endpoint), &fast_client());
    assert_eq!(report.pre_v7, 1, "old peer skipped, not failed: {report:?}");
    assert_eq!(report.pulled, 0);

    fake.join().unwrap();
}

/// One template hint the byte-level proptests can clone cheaply (the
/// log never interprets the kernel; compiling per case would dominate
/// the proptest's runtime).
fn template_hint() -> fabric::Hint {
    static KERNEL: std::sync::OnceLock<fabric::Hint> = std::sync::OnceLock::new();
    KERNEL
        .get_or_init(|| {
            let op = OpSpec::gemm(64, 64, 64);
            let gpu = GpuSpec::rtx4090();
            let kernel = roller::Roller::default().compile(&op, &gpu);
            fabric::Hint {
                target: "tcp://127.0.0.1:1".into(),
                op,
                gpu,
                method: "roller".into(),
                kernel: served::WireKernel::from(&kernel),
            }
        })
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Chop the hint spool at EVERY byte offset: recovery must keep
    /// exactly the frames whose bytes are complete in the prefix (a
    /// frame missing only its trailing newline still validates — the
    /// CRC covers the payload, not the terminator) and truncate the
    /// rest durably, so the damage never shadows later appends.
    #[test]
    fn torn_tails_truncate_to_exactly_the_intact_prefix(
        n in 1usize..5,
        frac in 0.0f64..1.0,
    ) {
        let path = tmp_path(&format!("torn-prop-{n}-{}", (frac * 1e6) as u64));
        std::fs::remove_file(&path).ok();
        let log = HintLog::open(&path, 16).unwrap();
        for i in 0..n {
            let mut h = template_hint();
            h.method = format!("m{i}");
            prop_assert!(log.enqueue(h));
        }
        drop(log);

        let body = std::fs::read_to_string(&path).unwrap();
        let cut = ((body.len() as f64) * frac) as usize;
        std::fs::write(&path, &body[..cut]).unwrap();

        // A line is intact when every byte but (at most) its '\n' made
        // it; recovery stops at the first line that is not.
        let mut expected = 0usize;
        let mut end = 0usize;
        for line in body.lines() {
            end += line.len() + 1;
            if cut >= end - 1 {
                expected += 1;
            } else {
                break;
            }
        }

        let log = HintLog::open(&path, 16).unwrap();
        prop_assert_eq!(log.len(), expected);
        // The truncation persisted: a second open parses cleanly to the
        // same queue (no half-frame left to trip over).
        drop(log);
        prop_assert_eq!(HintLog::open(&path, 16).unwrap().len(), expected);
        std::fs::remove_file(&path).ok();
    }

    /// Arbitrary interleavings of enqueue / take / partial-delivery /
    /// requeue never duplicate and never lose a hint: when the queue
    /// finally drains, every hint was delivered exactly once.
    #[test]
    fn take_requeue_interleavings_deliver_each_hint_exactly_once(
        script in proptest::collection::vec((0u8..3, 0usize..4), 1..24),
    ) {
        let log = HintLog::in_memory(256);
        let targets = ["tcp://a", "tcp://b"];
        let mut queued = 0usize;
        let mut delivered: Vec<usize> = Vec::new();
        for (kind, arg) in script {
            match kind {
                // Queue a new uniquely-numbered hint.
                0 => {
                    let mut h = template_hint();
                    h.target = targets[arg % 2].into();
                    h.method = format!("m{queued}");
                    prop_assert!(log.enqueue(h));
                    queued += 1;
                }
                // Replay a target, "crashing" after `arg` deliveries.
                1 => {
                    let mut pending = log.take(targets[arg % 2]);
                    let ok = pending.len().min(arg);
                    for h in pending.drain(..ok) {
                        delivered.push(h.method[1..].parse().unwrap());
                    }
                    log.requeue(pending);
                }
                // Replay a target to completion.
                _ => {
                    for h in log.take(targets[arg % 2]) {
                        delivered.push(h.method[1..].parse().unwrap());
                    }
                }
            }
        }
        for target in targets {
            for h in log.take(target) {
                delivered.push(h.method[1..].parse().unwrap());
            }
        }
        delivered.sort_unstable();
        let every_once: Vec<usize> = (0..queued).collect();
        prop_assert_eq!(delivered, every_once);
    }
}

/// Replay against a real daemon: every queued hint lands as one put,
/// and a duplicate replay is an idempotent no-op on the cache.
#[test]
fn replayed_hints_land_exactly_once_on_the_daemon() {
    let cache = Arc::new(schedcache::ScheduleCache::in_memory());
    let server = bind_daemon("tcp://127.0.0.1:0", cache.clone(), None);
    let endpoint = server.endpoint().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let tuner = roller::Roller::default();
    let gpu = GpuSpec::rtx4090();
    let hints = Arc::new(HintLog::in_memory(16));
    let ops: Vec<OpSpec> = (1..4).map(|i| OpSpec::gemm(64 * i, 64, 64)).collect();
    for op in &ops {
        let kernel = tuner.compile(op, &gpu);
        assert!(hints.enqueue(fabric::Hint {
            target: endpoint.clone(),
            op: op.clone(),
            gpu: gpu.clone(),
            method: "roller".into(),
            kernel: served::WireKernel::from(&kernel),
        }));
    }

    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(std::slice::from_ref(&endpoint), "roller", None, &fallback)
        .with_config(fast_client())
        .with_hints(hints.clone());
    let (replayed, requeued) = fabric.replay_hints();
    assert_eq!((replayed, requeued), (3, 0));
    assert!(hints.is_empty());
    assert_eq!(cache.digest().count, 3, "every hint installed");

    // Queue one of them again: the replay goes through (the daemon
    // answers), but the cache does not grow — `Put` is idempotent.
    let kernel = tuner.compile(&ops[0], &gpu);
    hints.enqueue(fabric::Hint {
        target: endpoint.clone(),
        op: ops[0].clone(),
        gpu: gpu.clone(),
        method: "roller".into(),
        kernel: served::WireKernel::from(&kernel),
    });
    let (replayed, requeued) = fabric.replay_hints();
    assert_eq!((replayed, requeued), (1, 0));
    assert_eq!(cache.digest().count, 3, "duplicate replay was a no-op");

    let mut c = Client::connect_with(&endpoint, fast_client()).unwrap();
    assert_eq!(c.stats().unwrap().puts, 4, "three installs + one no-op");
    drop(c);

    handle.shutdown();
    join.join().unwrap();
}
