//! The fleet observability drill: three in-process daemons on loopback
//! TCP serve one traced compile batch, one daemon is "SIGKILL'd"
//! mid-batch by a failpoint in its accept loop, and the observability
//! plane must hold up anyway — the surviving spans all carry the one
//! minted trace id, the `TraceDump` pull still answers, the merged
//! Perfetto document is well-formed JSON, and the flight-recorder dump
//! written at the kill parses line-by-line.
//!
//! Also here: `cluster metrics` aggregation over live daemons — every
//! peer's scrape is re-labeled `peer="<endpoint>"` and the fleet
//! histogram quantiles come from merged buckets, not averaged p99s.
//!
//! All daemons share this test process, so the flight recorder (a
//! process-global collector) is one ring shared by client and daemons.
//! That collapses the per-process separation a real fleet has, but the
//! propagation contract under test — trace ids minted client-side
//! arriving in daemon-side `serve.request` spans over the wire — is
//! exactly the same.

use fabric::{cluster_metrics, FabricClient};
use hardware::GpuSpec;
use served::{
    BreakerConfig, Client, ClientConfig, DrainReport, MethodRegistry, Server, ServerConfig,
    ServerHandle,
};
use simgpu::Tuner;
use std::sync::Arc;
use std::time::Duration;
use tensor_expr::OpSpec;

fn start_tcp(
    tweak: impl FnOnce(&mut ServerConfig),
) -> (String, ServerHandle, std::thread::JoinHandle<DrainReport>) {
    let mut cfg = ServerConfig::new("tcp://127.0.0.1:0");
    cfg.workers = 4;
    cfg.max_inflight = 16;
    tweak(&mut cfg);
    let cache = Arc::new(schedcache::ScheduleCache::in_memory());
    let server = Server::bind(cfg, cache, MethodRegistry::standard()).unwrap();
    let endpoint = server.endpoint().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (endpoint, handle, join)
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        retries: 1,
        connect_timeout: Duration::from_millis(300),
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    }
}

fn hair_trigger() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 1,
        cooldown: Duration::from_secs(60),
        max_cooldown: Duration::from_secs(60),
    }
}

/// The `trace` field a span/event carries, if any.
fn trace_field(ev: &obs::Event) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match (k, v) {
        (&"trace", obs::Value::U64(t)) => Some(*t),
        (&"trace", _) => Some(0),
        _ => None,
    })
}

#[test]
fn traced_batch_survives_a_mid_batch_kill_with_one_trace_id() {
    let crash_site = "fleet.obs.crash";
    let flight_dir = std::env::temp_dir().join(format!("gensor-fleet-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flight_dir);
    let rec = obs::FlightRecorder::install(&flight_dir, 1 << 16, "fleet");

    let (ep_a, handle_a, join_a) = start_tcp(|_| {});
    let (ep_b, _handle_b, join_b) = start_tcp(|cfg| {
        cfg.crash_site = Some(crash_site.to_string());
    });
    let (ep_c, handle_c, join_c) = start_tcp(|_| {});
    let peers = vec![ep_a.clone(), ep_b.clone(), ep_c.clone()];

    let ctx = obs::TraceContext::mint();
    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(&peers, "roller", None, &fallback)
        .with_config(fast_client())
        .with_breaker(hair_trigger())
        .with_trace(ctx);

    let spec = GpuSpec::rtx4090();
    let ops: Vec<OpSpec> = (0..16)
        .map(|i| OpSpec::gemm(64 + 16 * i, 64, 128))
        .collect();

    // Half the batch against the healthy fleet…
    for op in &ops[..8] {
        let _ = fabric.compile(op, &spec);
    }
    // …then the simulated SIGKILL mid-batch. The fired failpoint itself
    // snapshots the flight recorder (reason `failpoint:<site>`), before
    // the dying accept loop's own crash dump would.
    faults::arm(crash_site, faults::Policy::ErrFrom(1));
    let report_b = join_b.join().unwrap();
    faults::disarm(crash_site);
    assert_eq!(report_b.reason, "crash");
    for op in &ops[8..] {
        let _ = fabric.compile(op, &spec);
    }
    let r = fabric.report();
    assert_eq!(r.remote, 16, "every compile answered remote: {r:?}");

    // Every span that carries a trace id carries THE trace id — client
    // fabric.route hops and daemon serve.request handling alike.
    let events = rec.events();
    let traced: Vec<&obs::Event> = events.iter().filter(|e| trace_field(e).is_some()).collect();
    assert!(!traced.is_empty(), "no spans carried trace context");
    assert!(
        traced.iter().all(|e| trace_field(e) == Some(ctx.trace_id)),
        "foreign trace ids in the stream"
    );
    let serve_spans = events
        .iter()
        .filter(|e| {
            matches!(&e.kind, obs::EventKind::Begin { name } if *name == "serve.request")
                && trace_field(e) == Some(ctx.trace_id)
        })
        .count();
    assert!(
        serve_spans >= 8,
        "daemon-side spans must carry the propagated id (got {serve_spans})"
    );

    // The remote span buffer is pullable from a survivor over the wire.
    let mut client = Client::connect_with(ep_a.as_str(), fast_client()).unwrap();
    let (tag, wire) = client.trace_dump().unwrap();
    assert_eq!(tag, "fleet");
    assert!(!wire.is_empty());
    let pulled: Vec<obs::Event> = wire.iter().map(served::WireEvent::to_event).collect();
    assert!(
        pulled.iter().any(|e| trace_field(e) == Some(ctx.trace_id)),
        "pulled buffer lost the trace ids"
    );

    // The merged multi-process document is loadable JSON with one
    // process row per part and a single trace id across all args.
    let parts = [
        obs::chrome::TraceProcess {
            pid: 1,
            name: "client".to_string(),
            events: &events,
        },
        obs::chrome::TraceProcess {
            pid: 2,
            name: ep_a.clone(),
            events: &pulled,
        },
    ];
    let doc = obs::chrome::trace_json_multi(&parts);
    let v: serde_json::Value = serde_json::from_str(&doc).expect("merged trace parses");
    let rows = v["traceEvents"].as_array().unwrap();
    assert!(rows
        .iter()
        .any(|e| e["ph"] == "M" && e["args"]["name"] == "client"));
    assert!(rows
        .iter()
        .any(|e| e["ph"] == "M" && e["args"]["name"].as_str() == Some(ep_a.as_str())));
    let arg_ids: Vec<u64> = rows
        .iter()
        .filter_map(|e| e["args"]["trace"].as_u64())
        .collect();
    assert!(!arg_ids.is_empty());
    assert!(
        arg_ids.iter().all(|t| *t == ctx.trace_id),
        "merged document spans more than one trace"
    );

    // The kill left a flight dump on disk, and it parses clean:
    // a JSON header naming the reason, then one JSON object per line.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&flight_dir)
        .expect("flight dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    assert!(!dumps.is_empty(), "no flight dump after the kill");
    let mut saw_kill_dump = false;
    for dump in &dumps {
        let body = std::fs::read_to_string(dump).unwrap();
        for (i, line) in body.lines().enumerate() {
            let parsed: serde_json::Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("{}:{} unparseable: {e}", dump.display(), i + 1));
            if i == 0 {
                assert_eq!(parsed["flight"].as_str(), Some("fleet"));
            }
        }
        let header: serde_json::Value = serde_json::from_str(body.lines().next().unwrap()).unwrap();
        if header["reason"]
            .as_str()
            .is_some_and(|r| r.contains(crash_site) || r == "crash")
        {
            saw_kill_dump = true;
        }
    }
    assert!(saw_kill_dump, "no dump recorded the kill: {dumps:?}");

    handle_a.shutdown();
    handle_c.shutdown();
    join_a.join().unwrap();
    join_c.join().unwrap();
    obs::flight::uninstall();
    let _ = std::fs::remove_dir_all(&flight_dir);
}

#[test]
fn cluster_metrics_merges_live_peers_with_per_peer_labels() {
    let (ep_a, handle_a, join_a) = start_tcp(|_| {});
    let (ep_b, handle_b, join_b) = start_tcp(|_| {});
    let peers = vec![ep_a.clone(), ep_b.clone()];

    // Put some traffic through both daemons so the scrape is non-empty.
    let fallback = roller::Roller::default();
    let fabric = FabricClient::new(&peers, "roller", None, &fallback).with_config(fast_client());
    let spec = GpuSpec::rtx4090();
    for i in 0..4 {
        let _ = fabric.compile(&OpSpec::gemm(96 + 32 * i, 64, 128), &spec);
    }

    let fleet = cluster_metrics(&peers, &fast_client());
    assert_eq!((fleet.up, fleet.total), (2, 2));

    // Merged exposition: every sample re-labeled with its origin peer.
    let text = fleet.merged_text();
    for ep in &peers {
        assert!(
            text.contains(&format!("peer=\"{ep}\"")),
            "no peer label for {ep} in merged text"
        );
    }
    assert!(text.contains("gensor_serve_requests_total"), "{text}");

    // Fleet counters sum across peers; fleet histograms come from
    // merged buckets, so the quantiles are ordered and the counts add.
    let counters = fleet.counters();
    assert!(
        counters
            .get("gensor_serve_requests_total")
            .is_some_and(|v| *v > 0.0),
        "{counters:?}"
    );
    for h in fleet.histograms() {
        assert!(h.p50_us <= h.p99_us, "{h:?}");
    }

    // Human and JSON renderings agree on liveness.
    assert!(fleet.render().contains("2/2 peers"), "{}", fleet.render());
    let v: serde_json::Value = serde_json::from_str(&fleet.render_json()).unwrap();
    assert_eq!(v["up"].as_u64(), Some(2));
    assert_eq!(v["total"].as_u64(), Some(2));
    assert!(v["histograms"].as_array().is_some());

    handle_a.shutdown();
    handle_b.shutdown();
    join_a.join().unwrap();
    join_b.join().unwrap();
}
