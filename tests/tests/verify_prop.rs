//! Static-verification properties: every schedule the tuner constructs is
//! provably legal on its target device, every state reachable through the
//! construction primitives verifies clean, and damaged schedules never
//! slip past the verifier.

use etir::{Action, Etir};
use gensor::{Gensor, GensorConfig};
use hardware::GpuSpec;
use proptest::prelude::*;
use simgpu::Tuner;
use tensor_expr::{benchmark_suite, OpSpec};
use verify::verify_schedule;

/// Tuner winners across the paper's 32-operator suite × the GPU presets
/// verify with zero `GS0xx` errors (warnings allowed — `gensor lint
/// --deny-warnings` in CI owns the stricter policy).
#[test]
fn tuner_output_verifies_clean_across_suite_and_presets() {
    let presets = GpuSpec::all_presets();
    let tuner = Gensor::with_config(GensorConfig {
        chains: 2,
        ..Default::default()
    });
    for (i, cfg) in benchmark_suite().into_iter().enumerate() {
        // Round-robin the presets: every (operator, device) class pairing
        // is covered without compiling 32 × presets schedules.
        let spec = &presets[i % presets.len()];
        let ck = tuner.compile(&cfg.op, spec);
        let report = verify_schedule(&ck.etir, Some(spec));
        assert!(
            report.is_legal(),
            "{} on {} failed verification:\n{}",
            cfg.label,
            spec.name,
            report.render()
        );
    }
}

/// Targeted corruption of a legal schedule is always caught — the
/// verifier is the backstop between a damaged cache record and a launched
/// kernel.
#[test]
fn corrupted_schedules_are_rejected() {
    let spec = GpuSpec::rtx4090();
    let ck = Gensor::single_chain(11).compile(&OpSpec::gemm(1024, 512, 512), &spec);
    let base = ck.etir;
    assert!(verify_schedule(&base, Some(&spec)).is_legal());
    type Mutation = (&'static str, Box<dyn Fn(&mut Etir)>);
    let mutations: Vec<Mutation> = vec![
        ("zero vthread", Box::new(|e: &mut Etir| e.vthreads[0] = 0)),
        ("zero reg tile", Box::new(|e: &mut Etir| e.reg_tile[0] = 0)),
        (
            "truncated tile vector",
            Box::new(|e: &mut Etir| {
                e.smem_tile.pop();
            }),
        ),
        (
            "non-power-of-two unroll",
            Box::new(|e: &mut Etir| e.unroll = 3),
        ),
        ("level overrun", Box::new(|e: &mut Etir| e.cur_level = 99)),
        (
            "absurd reduce tile",
            Box::new(|e: &mut Etir| e.reduce_tile[0] = 1 << 40),
        ),
        (
            "register blowup",
            Box::new(|e: &mut Etir| e.reg_tile[0] = 255),
        ),
    ];
    for (what, mutate) in mutations {
        let mut m = base.clone();
        mutate(&mut m);
        let report = verify_schedule(&m, Some(&spec));
        assert!(!report.is_legal(), "{what} escaped: {}", report.summary());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any capacity-feasible state reachable through the construction
    /// primitives verifies with zero errors: the walk cannot step into an
    /// illegal region, so a verification failure always means corruption,
    /// never construction.
    #[test]
    fn reachable_states_verify_clean(
        (m, k, n) in (16u64..2048, 4u64..512, 16u64..2048),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(m, k, n);
        let mut e = Etir::initial(op, &spec);
        for &c in &choices {
            let acts = Action::enumerate(&e);
            if acts.is_empty() {
                break;
            }
            let next = e.apply(&acts[c as usize % acts.len()]);
            if etir::analytics::MemCheck::check_capacity(&next, &spec).fits() {
                e = next;
            }
        }
        let report = verify_schedule(&e, Some(&spec));
        prop_assert!(
            report.is_legal(),
            "reachable state failed:\n{}",
            report.render()
        );
    }

    /// The verifier is a total function: arbitrary garbage states produce
    /// a report (possibly full of errors), never a panic.
    #[test]
    fn verifier_never_panics_on_garbage(
        smem in proptest::collection::vec(0u64..100_000, 0..5),
        reg in proptest::collection::vec(0u64..300, 0..5),
        vt in proptest::collection::vec(0u64..64, 0..5),
        red in proptest::collection::vec(0u64..1 << 20, 0..3),
        unroll in 0u64..70,
        level in 0usize..12,
    ) {
        let spec = GpuSpec::rtx4090();
        let mut e = Etir::initial(OpSpec::gemm(512, 256, 512), &spec);
        e.smem_tile = smem;
        e.reg_tile = reg;
        e.vthreads = vt;
        e.reduce_tile = red;
        e.unroll = unroll;
        e.cur_level = level;
        let _ = verify_schedule(&e, Some(&spec));
        let _ = verify_schedule(&e, None);
    }
}
