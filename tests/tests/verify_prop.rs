//! Static-verification properties: every schedule the tuner constructs is
//! provably legal on its target device, every state reachable through the
//! construction primitives verifies clean, and damaged schedules never
//! slip past the verifier.

use etir::{Action, Etir};
use gensor::{Gensor, GensorConfig};
use hardware::GpuSpec;
use proptest::prelude::*;
use simgpu::Tuner;
use tensor_expr::{benchmark_suite, OpSpec};
use verify::domain::{fixpoint, Fixpoint, Interval, Lattice, FIXPOINT_BUDGET};
use verify::symbolic::{eval_spatial, index_range, DimParams};
use verify::{verify_schedule, AbsVal};

/// Tuner winners across the paper's 32-operator suite × the GPU presets
/// verify with zero `GS0xx` errors (warnings allowed — `gensor lint
/// --deny-warnings` in CI owns the stricter policy).
#[test]
fn tuner_output_verifies_clean_across_suite_and_presets() {
    let presets = GpuSpec::all_presets();
    let tuner = Gensor::with_config(GensorConfig {
        chains: 2,
        ..Default::default()
    });
    for (i, cfg) in benchmark_suite().into_iter().enumerate() {
        // Round-robin the presets: every (operator, device) class pairing
        // is covered without compiling 32 × presets schedules.
        let spec = &presets[i % presets.len()];
        let ck = tuner.compile(&cfg.op, spec);
        let report = verify_schedule(&ck.etir, Some(spec));
        assert!(
            report.is_legal(),
            "{} on {} failed verification:\n{}",
            cfg.label,
            spec.name,
            report.render()
        );
    }
}

/// Targeted corruption of a legal schedule is always caught — the
/// verifier is the backstop between a damaged cache record and a launched
/// kernel.
#[test]
fn corrupted_schedules_are_rejected() {
    let spec = GpuSpec::rtx4090();
    let ck = Gensor::single_chain(11).compile(&OpSpec::gemm(1024, 512, 512), &spec);
    let base = ck.etir;
    assert!(verify_schedule(&base, Some(&spec)).is_legal());
    type Mutation = (&'static str, Box<dyn Fn(&mut Etir)>);
    let mutations: Vec<Mutation> = vec![
        ("zero vthread", Box::new(|e: &mut Etir| e.vthreads[0] = 0)),
        ("zero reg tile", Box::new(|e: &mut Etir| e.reg_tile[0] = 0)),
        (
            "truncated tile vector",
            Box::new(|e: &mut Etir| {
                e.smem_tile.pop();
            }),
        ),
        (
            "non-power-of-two unroll",
            Box::new(|e: &mut Etir| e.unroll = 3),
        ),
        ("level overrun", Box::new(|e: &mut Etir| e.cur_level = 99)),
        (
            "absurd reduce tile",
            Box::new(|e: &mut Etir| e.reduce_tile[0] = 1 << 40),
        ),
        (
            "register blowup",
            Box::new(|e: &mut Etir| e.reg_tile[0] = 255),
        ),
    ];
    for (what, mutate) in mutations {
        let mut m = base.clone();
        mutate(&mut m);
        let report = verify_schedule(&m, Some(&spec));
        assert!(!report.is_legal(), "{what} escaped: {}", report.summary());
    }
}

/// One symbolic verification of a dynamic-shape bucket covers every
/// concrete shape in it: the bucket verdict equals the conjunction of
/// per-shape concrete verification of the same schedule template — for a
/// clean template, and for one that overclaims lanes on part of the
/// extent range (so some members pass and some fail concretely).
#[test]
fn bucket_verdict_matches_per_shape_concrete_verification() {
    let spec = GpuSpec::rtx4090();
    let instantiate = |template: &Etir, op: &OpSpec| -> Etir {
        let mut m = Etir::initial(op.clone(), &spec);
        m.smem_tile = template.smem_tile.clone();
        m.reg_tile = template.reg_tile.clone();
        m.vthreads = template.vthreads.clone();
        m.reduce_tile = template.reduce_tile.clone();
        m.unroll = template.unroll;
        m.cur_level = template.cur_level;
        m
    };

    // Clean: a large-extent GEMM family under the default template.
    let big: Vec<OpSpec> = (1..=16).map(|i| OpSpec::gemm(64 * i, 256, 512)).collect();
    // Overclaiming: extents 8..=64 with a 32-wide tile claiming 32 lanes —
    // the extent clamp caps the tile below the claim for the small end of
    // the bucket, so concrete verification splits (m=64 legal, m=8 not).
    let small: Vec<OpSpec> = (1..=8).map(|i| OpSpec::gemm(8 * i, 64, 64)).collect();
    let mut overclaim = Etir::initial(small[0].clone(), &spec);
    overclaim.smem_tile[0] = 32;
    overclaim.reg_tile[0] = 2;
    overclaim.vthreads[0] = 2;

    for (members, template) in [
        (&big, Etir::initial(big[0].clone(), &spec)),
        (&small, overclaim),
    ] {
        let bucket = verify::ShapeBucket::cover(members.iter()).unwrap();
        let symbolic_legal = verify::verify_bucket(&template, &bucket).is_legal();
        let concrete: Vec<bool> = members
            .iter()
            .map(|op| verify_schedule(&instantiate(&template, op), None).is_legal())
            .collect();
        assert_eq!(
            symbolic_legal,
            concrete.iter().all(|&ok| ok),
            "bucket {} disagrees with per-shape verdicts {concrete:?}",
            bucket.describe()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any capacity-feasible state reachable through the construction
    /// primitives verifies with zero errors: the walk cannot step into an
    /// illegal region, so a verification failure always means corruption,
    /// never construction.
    #[test]
    fn reachable_states_verify_clean(
        (m, k, n) in (16u64..2048, 4u64..512, 16u64..2048),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let spec = GpuSpec::rtx4090();
        let op = OpSpec::gemm(m, k, n);
        let mut e = Etir::initial(op, &spec);
        for &c in &choices {
            let acts = Action::enumerate(&e);
            if acts.is_empty() {
                break;
            }
            let next = e.apply(&acts[c as usize % acts.len()]);
            if etir::analytics::MemCheck::check_capacity(&next, &spec).fits() {
                e = next;
            }
        }
        let report = verify_schedule(&e, Some(&spec));
        prop_assert!(
            report.is_legal(),
            "reachable state failed:\n{}",
            report.render()
        );
    }

    /// The verifier is a total function: arbitrary garbage states produce
    /// a report (possibly full of errors), never a panic.
    #[test]
    fn verifier_never_panics_on_garbage(
        smem in proptest::collection::vec(0u64..100_000, 0..5),
        reg in proptest::collection::vec(0u64..300, 0..5),
        vt in proptest::collection::vec(0u64..64, 0..5),
        red in proptest::collection::vec(0u64..1 << 20, 0..3),
        unroll in 0u64..70,
        level in 0usize..12,
    ) {
        let spec = GpuSpec::rtx4090();
        let mut e = Etir::initial(OpSpec::gemm(512, 256, 512), &spec);
        e.smem_tile = smem;
        e.reg_tile = reg;
        e.vthreads = vt;
        e.reduce_tile = red;
        e.unroll = unroll;
        e.cur_level = level;
        let _ = verify_schedule(&e, Some(&spec));
        let _ = verify_schedule(&e, None);
    }

    /// The symbolic evaluator instantiated at a *singleton* extent agrees
    /// with the concrete arithmetic the bounds pass historically
    /// hard-coded: the widening/narrowing fixpoint over the four-level
    /// index loop is exact, not just sound, on affine nests.
    #[test]
    fn symbolic_singleton_agrees_with_concrete_index_and_volume_math(
        r in 1u64..=8,
        v in 1u64..=8,
        q in 1u64..=16,
        g in 1u64..=64,
        ext in 1u64..=4096,
    ) {
        let t = r * v * q;
        let p = DimParams { tile: t, reg: r, vthreads: v, thread_dims: q };
        // Index range at a fixed grid: exactly the closed form.
        let idx = index_range(t, &AbsVal::constant(g), &p);
        let closed = (g - 1) * t + ((v - 1) * q + (q - 1)) * r + (r - 1);
        prop_assert_eq!(idx.hi(), closed);
        prop_assert_eq!(idx.lo(), 0);
        // Volume math at a fixed extent: clamp, grid, and padding all
        // collapse to the concrete values.
        let f = eval_spatial(&p, &AbsVal::constant(ext));
        let tc = t.min(ext.next_power_of_two()).max(1);
        let grid = ext.div_ceil(tc);
        prop_assert_eq!(f.tile.as_const(), Some(tc));
        prop_assert_eq!(f.grid.as_const(), Some(grid));
        prop_assert_eq!(f.padded.as_const(), Some(grid * tc));
    }

    /// Threshold widening makes every ascending chain stabilise inside
    /// the engine's iteration budget, whatever (monotone-ish) growth the
    /// transfer function applies per step.
    #[test]
    fn widened_fixpoints_converge_within_the_budget(
        seed_hi in 0u64..1000,
        step in 1u64..(1 << 40),
        factor in 1u64..16,
    ) {
        let seed = Interval::range(0, seed_hi);
        let result = fixpoint(seed, FIXPOINT_BUDGET, |iv: &Interval| {
            // Grows without bound concretely; only widening stops it.
            let grown = Interval::range(iv.lo, iv.hi.saturating_mul(factor).saturating_add(step));
            iv.join(&grown)
        });
        prop_assert!(result.converged(), "diverged: {:?}", result);
        if let Fixpoint::Reached(iv, iters) = result {
            // A post-fixpoint of a growing transfer is ⊤-like above.
            prop_assert!(iv.hi == u64::MAX || iv.hi >= step, "{iv:?}");
            prop_assert!(iters < FIXPOINT_BUDGET);
        }
    }
}
