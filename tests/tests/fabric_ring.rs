//! Property tests for the fabric's consistent-hash ring (DESIGN §13):
//! routing must be stable under spec serialization (every daemon and
//! client that shares a member list must route identically), and losing
//! one of N nodes must remap only that node's ~1/N of the key space.

use fabric::{hash64, ring_key, Ring, RingSpec, DEFAULT_VNODES};
use hardware::GpuSpec;
use proptest::prelude::*;
use schedcache::CacheKey;
use tensor_expr::OpSpec;

/// 2–7 distinct endpoints (position-salted so duplicates cannot occur).
fn arb_nodes() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(0u32..10_000, 2..8).prop_map(|ids| {
        ids.iter()
            .enumerate()
            .map(|(i, id)| format!("tcp://node-{i}-{id}:7070"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// (a) key→node assignment survives a `RingSpec` serialization
    /// round-trip: serialize, parse, rebuild — every key routes to the
    /// same replica set, in the same order.
    #[test]
    fn route_is_stable_under_spec_round_trip(
        nodes in arb_nodes(),
        vnodes in 1u32..96,
        keys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let ring = Ring::build(&nodes, vnodes);
        let json = serde_json::to_string(&ring.spec()).expect("serialize spec");
        let parsed: RingSpec = serde_json::from_str(&json).expect("parse spec");
        prop_assert_eq!(&parsed, &ring.spec());
        let rebuilt = Ring::from_spec(&parsed);
        for key in keys {
            prop_assert_eq!(ring.route(key, 2), rebuilt.route(key, 2));
            prop_assert_eq!(ring.primary(key), rebuilt.primary(key));
        }
    }

    /// (b) removing one of N nodes remaps only ~1/N of the keys — and
    /// *only* the removed node's keys; every key a survivor owned stays
    /// exactly where it was.
    #[test]
    fn removing_one_node_remaps_about_one_nth(n in 3usize..7) {
        let nodes: Vec<String> = (0..n).map(|i| format!("tcp://10.9.0.{i}:7070")).collect();
        let full = Ring::build(&nodes, DEFAULT_VNODES);
        let reduced = Ring::build(&nodes[..n - 1], DEFAULT_VNODES);
        let dead = nodes[n - 1].as_str();
        let samples = 4000u64;
        let mut moved = 0u64;
        for s in 0..samples {
            let key = hash64(&s.to_le_bytes());
            let before = full.primary(key).unwrap();
            let after = reduced.primary(key).unwrap();
            if before == dead {
                prop_assert!(after != dead, "orphaned keys must land on a survivor");
                moved += 1;
            } else {
                // A survivor's key must not move.
                prop_assert_eq!(before, after);
            }
        }
        let frac = moved as f64 / samples as f64;
        let ideal = 1.0 / n as f64;
        prop_assert!(
            (frac - ideal).abs() <= 0.6 * ideal,
            "expected ~{ideal:.3} of keys to move, got {frac:.3}"
        );
    }
}

#[test]
fn ring_key_is_deterministic_and_shape_sensitive() {
    let spec = GpuSpec::rtx4090();
    let a = ring_key(&CacheKey::new(
        &OpSpec::gemm(512, 256, 512),
        &spec,
        "gensor",
    ));
    let b = ring_key(&CacheKey::new(
        &OpSpec::gemm(512, 256, 512),
        &spec,
        "gensor",
    ));
    assert_eq!(a, b, "same key must always land at the same ring position");
    let c = ring_key(&CacheKey::new(
        &OpSpec::gemm(512, 256, 513),
        &spec,
        "gensor",
    ));
    assert_ne!(a, c);
}

#[test]
fn every_client_with_the_same_member_list_routes_identically() {
    // The deployment invariant behind write-through replication: two
    // processes that only share `--peers` (possibly in different order)
    // must agree on every key's primary and replicas.
    let listed = vec![
        "tcp://a:1".to_string(),
        "tcp://b:1".to_string(),
        "tcp://c:1".to_string(),
    ];
    let mut reversed = listed.clone();
    reversed.reverse();
    let x = Ring::build(&listed, DEFAULT_VNODES);
    let y = Ring::build(&reversed, DEFAULT_VNODES);
    for s in 0..500u64 {
        let key = hash64(&s.to_le_bytes());
        assert_eq!(x.route(key, 2), y.route(key, 2));
    }
}
