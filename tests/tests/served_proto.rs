//! Property tests for the serve daemon's wire protocol: every frame
//! round-trips bit-exactly through the length-prefixed encoding, frames
//! stream back-to-back without desync, and damaged input is rejected
//! with a typed error instead of garbage data.

use etir::{Action, Etir};
use hardware::GpuSpec;
use proptest::prelude::*;
use served::proto::{read_frame, write_frame, FrameError};
use served::{ErrKind, Request, Response, WireKernel, WireOutcome, PROTO_VERSION};
use std::io::Cursor;
use tensor_expr::OpSpec;

fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (8u64..512, 8u64..256, 8u64..512).prop_map(|(m, k, n)| OpSpec::gemm(m, k, n)),
        (16u64..1024, 8u64..256).prop_map(|(m, n)| OpSpec::gemv(m, n)),
        (1u64..4, 1u64..16, 7u64..30, 1u64..16).prop_map(|(n, ci, hw, co)| {
            OpSpec::conv2d(n, ci, hw, hw, co, 3.min(hw), 3.min(hw), 1, 1)
        }),
    ]
}

fn arb_gpu() -> impl Strategy<Value = GpuSpec> {
    (0usize..3).prop_map(|i| match i {
        0 => GpuSpec::rtx4090(),
        1 => GpuSpec::a100(),
        _ => GpuSpec::orin_nano(),
    })
}

fn arb_method() -> impl Strategy<Value = String> {
    (0usize..5).prop_map(|i| ["gensor", "roller", "ansor", "cublas", "pytorch"][i].to_string())
}

/// A feasible schedule: a pseudo-random action walk from the initial
/// state, keeping only states that still fit the memory hierarchy.
fn arb_kernel(op: &OpSpec, spec: &GpuSpec, choices: &[u8]) -> WireKernel {
    let mut e = Etir::initial(op.clone(), spec);
    for &c in choices {
        let acts = Action::enumerate(&e);
        if acts.is_empty() {
            break;
        }
        let next = e.apply(&acts[c as usize % acts.len()]);
        if etir::analytics::MemCheck::check(&next, spec).fits() {
            e = next;
        }
    }
    let report = simgpu::simulate(&e, spec).expect("walk kept feasibility");
    WireKernel {
        etir: e,
        report,
        wall_time_s: 0.125,
        simulated_tuning_s: 3.5,
        candidates_evaluated: choices.len() as u64,
    }
}

fn round_trip_request(req: &Request) -> Request {
    let mut buf = Vec::new();
    write_frame(&mut buf, req).unwrap();
    read_frame(&mut Cursor::new(buf)).unwrap()
}

fn round_trip_response(resp: &Response) -> Response {
    let mut buf = Vec::new();
    write_frame(&mut buf, resp).unwrap();
    read_frame(&mut Cursor::new(buf)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Compile requests survive the wire bit-for-bit, whatever the
    /// operator, device, method, or budget.
    #[test]
    fn compile_requests_round_trip(
        op in arb_op(),
        gpu in arb_gpu(),
        method in arb_method(),
        budget_raw in 0u32..2000,
    ) {
        let budget = (budget_raw > 0).then_some(budget_raw);
        let req = Request::Compile { op, gpu, method, budget };
        prop_assert_eq!(round_trip_request(&req), req);
    }

    /// Compiled responses round-trip: the schedule and its simulated
    /// profile come back identical to what the server sent.
    #[test]
    fn compiled_responses_round_trip(
        op in arb_op(),
        gpu in arb_gpu(),
        choices in proptest::collection::vec(any::<u8>(), 0..20),
        outcome_raw in 0usize..3,
    ) {
        let outcome = [WireOutcome::Built, WireOutcome::Hit, WireOutcome::Coalesced][outcome_raw];
        let kernel = arb_kernel(&op, &gpu, &choices);
        let resp = Response::Compiled { outcome, kernel };
        prop_assert_eq!(round_trip_response(&resp), resp);
    }

    /// Many frames written back-to-back into one stream read back in
    /// order — no desync, no bleed between frames.
    #[test]
    fn frame_streams_never_desync(
        ops in proptest::collection::vec(arb_op(), 1..8),
        gpu in arb_gpu(),
        method in arb_method(),
    ) {
        let reqs: Vec<Request> = ops
            .into_iter()
            .map(|op| Request::Compile {
                op,
                gpu: gpu.clone(),
                method: method.clone(),
                budget: None,
            })
            .collect();
        let mut buf = Vec::new();
        for r in &reqs {
            write_frame(&mut buf, r).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for want in &reqs {
            let got: Request = read_frame(&mut cur).unwrap();
            prop_assert_eq!(&got, want);
        }
        prop_assert!(matches!(
            read_frame::<_, Request>(&mut cur),
            Err(FrameError::Closed)
        ));
    }

    /// Truncating an encoded frame anywhere — header or payload — yields
    /// a typed error, never a mis-decoded value.
    #[test]
    fn truncated_frames_are_rejected(
        op in arb_op(),
        gpu in arb_gpu(),
        cut_raw in 0u64..u64::MAX,
    ) {
        let req = Request::Compile { op, gpu, method: "gensor".into(), budget: Some(7) };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let cut = 1 + (cut_raw as usize) % (buf.len() - 1);
        buf.truncate(cut);
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        prop_assert!(
            matches!(err, FrameError::Truncated),
            "cut at {cut} gave {err:?}"
        );
    }

    /// Flipping bytes inside the payload never yields a silently wrong
    /// frame: either it decodes to exactly the original (the flip hit
    /// redundant JSON whitespace — impossible here — or was a no-op) or
    /// it errors.
    #[test]
    fn corrupted_payloads_error_or_decode_exactly(
        op in arb_op(),
        gpu in arb_gpu(),
        pos_raw in 0u64..u64::MAX,
        flip in 1u8..=255,
    ) {
        let req = Request::Compile { op, gpu, method: "roller".into(), budget: None };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        let pos = 4 + (pos_raw as usize) % (buf.len() - 4);
        buf[pos] ^= flip;
        match read_frame::<_, Request>(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(_) | FrameError::Truncated | FrameError::TooLarge(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
            Ok(decoded) => {
                // A byte flip that still parses must have produced a
                // *different* value (e.g. a digit change) — never the
                // original by accident, and never a panic downstream.
                prop_assert!(decoded != req, "flip at {pos} was invisible");
            }
        }
    }
}

/// The version constant is wired into `Hello` both ways.
#[test]
fn hello_frames_carry_the_version() {
    let req = round_trip_request(&Request::Hello {
        proto: PROTO_VERSION,
        token: None,
    });
    assert_eq!(
        req,
        Request::Hello {
            proto: 7,
            token: None
        }
    );
    let resp = round_trip_response(&Response::Error {
        kind: ErrKind::UnsupportedProto,
        message: "server speaks proto 6".into(),
    });
    assert!(matches!(
        resp,
        Response::Error {
            kind: ErrKind::UnsupportedProto,
            ..
        }
    ));
}
