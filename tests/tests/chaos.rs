//! Chaos suite: deterministic fault injection (`crates/faults`) driven
//! through the real stack — store framing, the single-flight map, the
//! serve daemon's sockets and worker pool — proving every injected
//! failure ends in a typed error or a clean recovery, never a hang, a
//! wedged pool, or a lost store.
//!
//! The failpoint registry is process-global, so every test that arms a
//! site (or calls instrumented code) serializes on [`chaos_lock`]; the
//! guard disarms everything on entry *and* on drop, so a panicking test
//! cannot leak faults into its neighbours.

use etir::Etir;
use hardware::GpuSpec;
use proptest::prelude::*;
use schedcache::{CacheKey, CachedTuner, Outcome, ScheduleCache, Store};
use served::proto::{read_frame, write_frame};
use served::{
    Client, ClientError, ErrKind, MethodRegistry, Request, Response, Server, ServerConfig,
    ServerHandle, WireOutcome, PROTO_VERSION,
};
use simgpu::{CompiledKernel, SimError, Tuner};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tensor_expr::OpSpec;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Holds the chaos lock; disarms every failpoint when dropped so a
/// panicking test cannot poison the next one.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::disarm_all();
    }
}

fn chaos_lock() -> FaultGuard {
    let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::disarm_all();
    FaultGuard(g)
}

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("chaos-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn sock(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("chaos-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn kernel_for(op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
    let e = Etir::initial(op.clone(), spec);
    let report = simgpu::simulate(&e, spec).unwrap();
    CompiledKernel {
        etir: e,
        report,
        wall_time_s: 0.01,
        simulated_tuning_s: 0.5,
        candidates_evaluated: 1,
    }
}

/// A store record keyed for `method`, as `CachedTuner` would write it.
fn rec_for(op: &OpSpec, spec: &GpuSpec, method: &str) -> schedcache::CacheRecord {
    schedcache::store::record(
        CacheKey::new(op, spec, method),
        op.label(),
        method,
        &kernel_for(op, spec),
    )
}

/// A tuner that counts constructions and (optionally) holds the worker
/// long enough for queue-state races to be forced deterministically.
struct SleepTuner {
    builds: Arc<AtomicU64>,
    sleep: Duration,
}

impl Tuner for SleepTuner {
    fn name(&self) -> &'static str {
        "Sleep"
    }

    fn compile(&self, op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
        self.builds.fetch_add(1, Ordering::SeqCst);
        if !self.sleep.is_zero() {
            std::thread::sleep(self.sleep);
        }
        kernel_for(op, spec)
    }
}

fn sleepy_registry(builds: &Arc<AtomicU64>, sleep: Duration) -> MethodRegistry {
    let mut r = MethodRegistry::empty();
    r.register(
        "sleep",
        Box::new(SleepTuner {
            builds: builds.clone(),
            sleep,
        }),
    );
    r
}

/// Daemon on its own thread over an explicit cache (so restart tests can
/// hand it a store that just survived a crash).
fn start_daemon(
    tag: &str,
    registry: MethodRegistry,
    cache: Arc<ScheduleCache>,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (
    PathBuf,
    ServerHandle,
    std::thread::JoinHandle<served::DrainReport>,
) {
    let path = sock(tag);
    let mut cfg = ServerConfig::new(&path);
    cfg.workers = 4;
    cfg.max_inflight = 16;
    tweak(&mut cfg);
    let server = Server::bind(cfg, cache, registry).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    (path, handle, join)
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Worker pool: panics are isolated, answered, and survivable.
// ---------------------------------------------------------------------

/// A panicking compile job comes back as a typed `Internal` error on the
/// same connection, and the pool keeps serving afterwards.
#[test]
fn worker_panic_is_isolated_and_answered() {
    let _g = chaos_lock();
    let builds = Arc::new(AtomicU64::new(0));
    let (path, handle, join) = start_daemon(
        "worker-panic",
        sleepy_registry(&builds, Duration::ZERO),
        Arc::new(ScheduleCache::in_memory()),
        |_| {},
    );
    faults::arm("served.worker", faults::Policy::ErrNth(1));

    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(256, 128, 128);
    let mut c = Client::connect(&path).unwrap();
    match c.compile(&op, &spec, "sleep", None) {
        Err(ClientError::Remote { kind, message }) => {
            assert_eq!(kind, ErrKind::Internal);
            assert!(message.contains("panicked"), "got: {message}");
        }
        other => panic!("expected a typed Internal error, got {other:?}"),
    }
    assert_eq!(faults::hits("served.worker"), 1);

    // Same client, same pool: the panic consumed the job, not the worker.
    let (_k, outcome) = c.compile(&op, &spec, "sleep", None).unwrap();
    assert_eq!(outcome, WireOutcome::Built);
    assert_eq!(handle.stats().worker_panics, 1);
    let stats = c.stats().unwrap();
    assert_eq!(stats.worker_panics, 1);

    c.shutdown().unwrap();
    join.join().unwrap();
}

// ---------------------------------------------------------------------
// Socket and dispatch failpoints: bounded, typed, never a hang.
// ---------------------------------------------------------------------

/// A transient server-side write fault kills one handshake; the client's
/// bounded retry transparently reconnects.
#[test]
fn transient_socket_write_fault_is_retried_through() {
    let _g = chaos_lock();
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start_daemon(
        "socket-write",
        sleepy_registry(&builds, Duration::ZERO),
        Arc::new(ScheduleCache::in_memory()),
        |_| {},
    );
    faults::arm("served.socket.write", faults::Policy::ErrNth(1));

    // First Hello reply dies on the failpoint; connect_with retries the
    // whole handshake and the second attempt lands.
    let mut c = Client::connect(&path).unwrap();
    assert_eq!(faults::hits("served.socket.write"), 1);
    c.ping().unwrap();

    faults::disarm("served.socket.write");
    c.shutdown().unwrap();
    join.join().unwrap();
}

/// A fault at the dispatch boundary is a typed `Internal` error, and the
/// connection stays usable for the next request.
#[test]
fn dispatch_fault_is_a_typed_error() {
    let _g = chaos_lock();
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start_daemon(
        "dispatch-fault",
        sleepy_registry(&builds, Duration::ZERO),
        Arc::new(ScheduleCache::in_memory()),
        |_| {},
    );
    faults::arm("served.dispatch", faults::Policy::ErrNth(1));

    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemv(512, 128);
    let mut c = Client::connect(&path).unwrap();
    match c.compile(&op, &spec, "sleep", None) {
        Err(ClientError::Remote { kind, message }) => {
            assert_eq!(kind, ErrKind::Internal);
            assert!(message.contains("served.dispatch"), "got: {message}");
        }
        other => panic!("expected a typed Internal error, got {other:?}"),
    }
    let (_k, _o) = c.compile(&op, &spec, "sleep", None).unwrap();

    c.shutdown().unwrap();
    join.join().unwrap();
}

// ---------------------------------------------------------------------
// Cancellation: a disconnected client's queued job never runs.
// ---------------------------------------------------------------------

/// With one worker pinned on a slow build, a second client enqueues a
/// job and hangs up. The handler notices, releases the admission permit,
/// the worker skips the job un-run, and the daemon counts `cancelled`.
#[test]
fn queued_job_is_cancelled_when_its_client_disconnects() {
    let _g = chaos_lock();
    let builds = Arc::new(AtomicU64::new(0));
    let (path, handle, join) = start_daemon(
        "cancel",
        sleepy_registry(&builds, Duration::from_millis(500)),
        Arc::new(ScheduleCache::in_memory()),
        |cfg| cfg.workers = 1,
    );
    let spec = GpuSpec::rtx4090();
    let op_a = OpSpec::gemm(1024, 512, 512);
    let op_b = OpSpec::gemm(512, 256, 256);

    // Client A pins the only worker.
    let a = {
        let (path, op, spec) = (path.clone(), op_a.clone(), spec.clone());
        std::thread::spawn(move || {
            let mut c = Client::connect(&path).unwrap();
            c.compile(&op, &spec, "sleep", None).unwrap()
        })
    };
    wait_until("worker to pick up job A", Duration::from_secs(5), || {
        builds.load(Ordering::SeqCst) == 1
    });

    // Raw client B: handshake, enqueue a compile, hang up without reading
    // the answer.
    {
        let mut s = UnixStream::connect(&path).unwrap();
        write_frame(
            &mut s,
            &Request::Hello {
                proto: PROTO_VERSION,
                token: None,
            },
        )
        .unwrap();
        let hello: Response = read_frame(&mut s).unwrap();
        assert!(matches!(hello, Response::Hello { .. }));
        write_frame(
            &mut s,
            &Request::Compile {
                op: op_b.clone(),
                gpu: spec.clone(),
                method: "sleep".into(),
                budget: None,
            },
        )
        .unwrap();
    } // <- drop closes the socket while the job is still queued

    wait_until("the cancel to be counted", Duration::from_secs(5), || {
        handle.stats().cancelled == 1
    });

    let (_kernel, outcome) = a.join().unwrap();
    assert_eq!(outcome, WireOutcome::Built);
    assert_eq!(
        builds.load(Ordering::SeqCst),
        1,
        "the cancelled job must never reach the tuner"
    );

    // The permit came back: a fresh client gets an immediate build.
    let mut c = Client::connect(&path).unwrap();
    let (_k, o) = c.compile(&op_b, &spec, "sleep", None).unwrap();
    assert_eq!(o, WireOutcome::Built);
    assert_eq!(builds.load(Ordering::SeqCst), 2);

    c.shutdown().unwrap();
    join.join().unwrap();
}

// ---------------------------------------------------------------------
// Store: torn writes, failed renames, and restart recovery.
// ---------------------------------------------------------------------

/// A failed append is logged and absorbed — the compile still answers —
/// and only the unpersisted record is missing after a restart.
#[test]
fn append_fault_never_fails_a_compile() {
    let _g = chaos_lock();
    let path = tmpfile("append-fault");
    let spec = GpuSpec::rtx4090();
    let op1 = OpSpec::gemm(128, 64, 64);
    let op2 = OpSpec::gemv(256, 64);
    let builds = Arc::new(AtomicU64::new(0));
    let inner = SleepTuner {
        builds: builds.clone(),
        sleep: Duration::ZERO,
    };
    {
        let cache = Arc::new(ScheduleCache::open(&path).unwrap());
        let tuner = CachedTuner::new(&inner, cache);
        faults::arm("store.append", faults::Policy::ErrNth(1));
        let (_k, o) = tuner.compile_with_outcome(&op1, &spec);
        assert_eq!(o, Outcome::Built, "a dead store must not fail the build");
        assert_eq!(faults::hits("store.append"), 1);
        faults::disarm("store.append");
        let (_k, o) = tuner.compile_with_outcome(&op2, &spec);
        assert_eq!(o, Outcome::Built);
    }
    // Restart: only op2 survived — op1's record died on the failpoint.
    let cache = ScheduleCache::open(&path).unwrap();
    assert_eq!(cache.stats().loaded_from_disk, 1);
}

/// A crash mid-append (short write, no newline) is recovered on load by
/// truncating the torn tail; the next append lands on a clean boundary.
#[test]
fn partial_append_is_a_recoverable_torn_tail() {
    let _g = chaos_lock();
    let path = tmpfile("partial-append");
    let store = Store::open(&path);
    let spec = GpuSpec::rtx4090();
    let r1 = rec_for(&OpSpec::gemm(128, 64, 64), &spec, "Chaos");
    let r2 = rec_for(&OpSpec::gemv(256, 64), &spec, "Chaos");

    store.append(&r1).unwrap();
    faults::arm("store.append", faults::Policy::Partial);
    store
        .append(&r2)
        .expect_err("a short write must surface as an error");
    assert_eq!(faults::hits("store.append"), 1);
    faults::disarm("store.append");

    let (recs, rep) = store.load().unwrap();
    assert_eq!(recs.len(), 1);
    assert_eq!(rep.recovered_truncated, 1, "torn tail dropped, counted");
    assert_eq!(rep.corrupt, 0, "a torn tail is recovery, not corruption");

    // Truncation restored the append boundary: the retry round-trips.
    store.append(&r2).unwrap();
    let (recs, rep) = store.load().unwrap();
    assert_eq!(recs.len(), 2);
    assert_eq!(rep.recovered_truncated, 0);
    assert_eq!(rep.corrupt, 0);
}

/// A failed rename aborts compaction without touching the live file and
/// without leaking the temp file; the retry compacts normally.
#[test]
fn failed_compaction_rename_leaves_the_store_intact() {
    let _g = chaos_lock();
    let path = tmpfile("rename-fault");
    let store = Store::open(&path);
    let spec = GpuSpec::rtx4090();
    let r = rec_for(&OpSpec::gemm(192, 96, 96), &spec, "Chaos");
    store.append(&r).unwrap();
    store.append(&r).unwrap(); // superseded duplicate, compaction fodder

    faults::arm("store.rename", faults::Policy::ErrNth(1));
    store
        .compact()
        .expect_err("the rename failpoint must abort the pass");
    let (recs, _) = store.load().unwrap();
    assert_eq!(recs.len(), 2, "aborted compaction leaves the file alone");
    let tmp = path.with_extension(format!("compact-tmp.{}", std::process::id()));
    assert!(
        !tmp.exists(),
        "failed compaction must clean up its tmp file"
    );

    faults::disarm("store.rename");
    let report = store.compact().unwrap();
    assert_eq!(report.kept, 1);
    assert_eq!(report.superseded, 1);
    let (recs, _) = store.load().unwrap();
    assert_eq!(recs.len(), 1);
}

/// Full kill-mid-write drill: a store with one good record and a torn
/// tail restarts into a daemon that reports the recovery and serves the
/// surviving schedule as a hit.
#[test]
fn daemon_restart_after_torn_write_recovers_and_serves() {
    let _g = chaos_lock();
    let path = tmpfile("restart");
    let spec = GpuSpec::rtx4090();
    let op_good = OpSpec::gemm(256, 128, 128);
    {
        let store = Store::open(&path);
        // Keyed exactly as the daemon's CachedTuner would key it, so the
        // recovered record is a warm hit after restart.
        store.append(&rec_for(&op_good, &spec, "Sleep")).unwrap();
        faults::arm("store.append", faults::Policy::Partial);
        store
            .append(&rec_for(&OpSpec::gemv(512, 128), &spec, "Sleep"))
            .expect_err("the kill lands mid-write");
        faults::disarm("store.append");
    }

    // "Restart": reopen the store the way the daemon does on boot.
    let cache = Arc::new(ScheduleCache::open(&path).unwrap());
    let snap = cache.stats();
    assert_eq!(snap.loaded_from_disk, 1);
    assert_eq!(snap.recovered_truncated, 1);

    let builds = Arc::new(AtomicU64::new(0));
    let (sockpath, _handle, join) = start_daemon(
        "restart",
        sleepy_registry(&builds, Duration::ZERO),
        cache,
        |_| {},
    );
    let mut c = Client::connect(&sockpath).unwrap();
    let (_k, outcome) = c.compile(&op_good, &spec, "sleep", None).unwrap();
    assert_eq!(outcome, WireOutcome::Hit, "the survivor serves warm");
    assert_eq!(builds.load(Ordering::SeqCst), 0);
    let stats = c.stats().unwrap();
    assert_eq!(stats.cache.recovered_truncated, 1, "recovery is visible");

    c.shutdown().unwrap();
    join.join().unwrap();
}

// ---------------------------------------------------------------------
// Single-flight map and the evaluator.
// ---------------------------------------------------------------------

/// A builder that panics inside the single-flight slot aborts the flight
/// (waiters wake and retry) instead of wedging the key forever.
#[test]
fn builder_panic_does_not_wedge_the_flight() {
    let _g = chaos_lock();
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(320, 160, 160);
    let builds = Arc::new(AtomicU64::new(0));
    let inner = SleepTuner {
        builds: builds.clone(),
        sleep: Duration::ZERO,
    };
    let cache = Arc::new(ScheduleCache::in_memory());
    let tuner = CachedTuner::new(&inner, cache);

    faults::arm("map.build", faults::Policy::ErrNth(1));
    let r = catch_unwind(AssertUnwindSafe(|| tuner.compile_with_outcome(&op, &spec)));
    assert!(r.is_err(), "the armed builder must panic");

    // Same key, same cache: the aborted flight was cleaned up.
    let (_k, o) = tuner.compile_with_outcome(&op, &spec);
    assert_eq!(o, Outcome::Built);
    assert_eq!(builds.load(Ordering::SeqCst), 1);
}

/// The evaluator failpoint surfaces as a typed `SimError::Injected`, and
/// clears with the policy.
#[test]
fn evaluator_fault_is_typed_and_transient() {
    let _g = chaos_lock();
    let spec = GpuSpec::rtx4090();
    let e = Etir::initial(OpSpec::gemv(384, 96), &spec);

    faults::arm("simgpu.eval", faults::Policy::ErrNth(1));
    match simgpu::simulate(&e, &spec) {
        Err(SimError::Injected(m)) => assert!(m.contains("simgpu.eval")),
        other => panic!("expected an injected SimError, got {other:?}"),
    }
    simgpu::simulate(&e, &spec).expect("the nth-call policy fires once");
}

// ---------------------------------------------------------------------
// Property tests: arbitrary damage, longest-valid-prefix recovery.
// ---------------------------------------------------------------------

fn store_bytes(path: &PathBuf) -> Vec<u8> {
    let store = Store::open(path);
    let spec = GpuSpec::rtx4090();
    store
        .append(&rec_for(&OpSpec::gemm(64, 64, 64), &spec, "Chaos"))
        .unwrap();
    store
        .append(&rec_for(&OpSpec::gemv(128, 64), &spec, "Chaos"))
        .unwrap();
    store
        .append(&rec_for(&OpSpec::gemm(96, 32, 48), &spec, "Chaos"))
        .unwrap();
    std::fs::read(path).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Truncating the store at *any* byte offset — a crash snapshot —
    /// loads exactly the records whose lines survive whole, counts the
    /// torn tail, and leaves a file the next append round-trips through.
    #[test]
    fn truncation_recovers_the_longest_valid_prefix(cut_raw in 0u64..u64::MAX) {
        let _g = chaos_lock();
        let path = tmpfile("prop-truncate");
        let bytes = store_bytes(&path);
        let cut = 1 + (cut_raw as usize) % bytes.len();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let whole_lines = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        let has_torn_tail = bytes[cut - 1] != b'\n';

        let store = Store::open(&path);
        let (recs, rep) = store.load().unwrap();
        prop_assert_eq!(recs.len(), whole_lines);
        prop_assert_eq!(rep.recovered_truncated, usize::from(has_torn_tail));
        prop_assert_eq!(rep.corrupt, 0);

        // The truncated file is a working store again.
        let spec = GpuSpec::rtx4090();
        store.append(&rec_for(&OpSpec::gemm(80, 40, 40), &spec, "Chaos")).unwrap();
        let (recs, rep) = store.load().unwrap();
        prop_assert_eq!(recs.len(), whole_lines + 1);
        prop_assert_eq!(rep.recovered_truncated, 0);
        prop_assert_eq!(rep.corrupt, 0);
    }

    /// Flipping any single byte anywhere in the file never panics the
    /// loader, never invents records, and never bricks the store: a
    /// follow-up append is always readable.
    #[test]
    fn byte_flip_is_survivable_and_the_store_stays_writable(
        pos_raw in 0u64..u64::MAX,
        flip in 1u8..=255,
    ) {
        let _g = chaos_lock();
        let path = tmpfile("prop-flip");
        let mut bytes = store_bytes(&path);
        let pos = (pos_raw as usize) % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();

        let store = Store::open(&path);
        let (recs, rep) = store.load().unwrap();
        prop_assert!(recs.len() <= 3, "damage must never add records");
        // One flipped byte can destroy at most two records (a newline
        // flip merges its neighbours into one unparsable line).
        prop_assert!(!recs.is_empty(), "one flip cannot take out all three: {rep:?}");

        let spec = GpuSpec::rtx4090();
        let probe = schedcache::store::record(
            CacheKey::new(&OpSpec::gemm(112, 56, 56), &spec, "Chaos"),
            "fresh-probe".into(),
            "Chaos",
            &kernel_for(&OpSpec::gemm(112, 56, 56), &spec),
        );
        store.append(&probe).unwrap();
        let (recs, _) = store.load().unwrap();
        prop_assert!(
            recs.iter().any(|r| r.op_label == "fresh-probe"),
            "the store must stay appendable after damage"
        );
    }
}
