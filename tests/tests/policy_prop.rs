//! Property-based checks on the Markov policy and the simulator, across
//! arbitrary reachable states.

use etir::{Action, Etir};
use gensor::Policy;
use hardware::GpuSpec;
use proptest::prelude::*;
use tensor_expr::OpSpec;

fn arb_gemm() -> impl Strategy<Value = OpSpec> {
    (16u64..2048, 4u64..512, 16u64..2048).prop_map(|(m, k, n)| OpSpec::gemm(m, k, n))
}

fn walk(op: &OpSpec, spec: &GpuSpec, choices: &[u8]) -> Etir {
    let mut e = Etir::initial(op.clone(), spec);
    for &c in choices {
        let acts = Action::enumerate(&e);
        if acts.is_empty() {
            break;
        }
        let next = e.apply(&acts[c as usize % acts.len()]);
        if etir::analytics::MemCheck::check_capacity(&next, spec).fits() {
            e = next;
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Transition probabilities form a distribution at every state, and
    /// every positive-probability action is applicable and capacity-safe
    /// (§IV-C memory check).
    #[test]
    fn transition_probs_are_a_distribution(
        op in arb_gemm(),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
        t in 0u32..100,
    ) {
        let spec = GpuSpec::rtx4090();
        let e = walk(&op, &spec, &choices);
        let rows = Policy::default().transition_probs(&e, &spec, t);
        if rows.is_empty() {
            // Only legitimate when the state has no feasible edges at all.
            prop_assert!(e.is_complete() || Action::enumerate(&e).is_empty());
        } else {
            let total: f64 = rows.iter().map(|r| r.prob).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for r in &rows {
                prop_assert!(r.prob > 0.0 && r.prob <= 1.0);
                prop_assert!(e.can_apply(&r.action));
                let next = e.apply(&r.action);
                prop_assert!(
                    etir::analytics::MemCheck::check_capacity(&next, &spec).fits(),
                    "policy assigned mass to capacity-violating {:?}", r.action
                );
            }
        }
    }

    /// The simulator is a total function on capacity-feasible states and
    /// returns physical numbers.
    #[test]
    fn simulator_outputs_physical_quantities(
        op in arb_gemm(),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let spec = GpuSpec::orin_nano();
        let e = walk(&op, &spec, &choices);
        if let Ok(r) = simgpu::simulate(&e, &spec) {
            prop_assert!(r.time_us.is_finite() && r.time_us > 0.0);
            prop_assert!(r.gflops >= 0.0);
            prop_assert!(r.gflops <= spec.peak_fp32_gflops * 1.0001);
            prop_assert!((0.0..=1.0).contains(&r.sm_occupancy));
            prop_assert!((0.0..=1.0).contains(&r.mem_busy));
            prop_assert!((0.0..=1.0).contains(&r.l2_hit_rate));
            prop_assert!((0.0..=1.0).contains(&r.compute_throughput));
            prop_assert!(r.bank_conflict_degree >= 1.0);
            prop_assert!((0.0..=1.0).contains(&r.dram_efficiency));
        }
    }

    /// Codegen emits balanced, schedule-consistent CUDA for any reachable
    /// feasible state.
    #[test]
    fn codegen_emits_wellformed_cuda(
        op in arb_gemm(),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let spec = GpuSpec::rtx4090();
        let e = walk(&op, &spec, &choices);
        let src = codegen::emit_cuda(&e);
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        prop_assert_eq!(opens, closes);
        prop_assert!(src.contains("__global__"));
        // Launch geometry must match the analytical thread accounting.
        let nest = etir::LoopNest::from_etir(&e);
        let lc = codegen::LaunchConfig::from_nest(&nest, 0);
        prop_assert_eq!(lc.threads_per_block(), e.threads_per_block());
        prop_assert_eq!(lc.total_blocks(), nest.total_blocks());
    }
}
