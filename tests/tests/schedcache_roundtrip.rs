//! Integration properties of the persistent schedule cache: on-disk
//! round-trips are exact (bit-identical floats), corruption is survivable,
//! warm caches make whole-model recompiles effectively free, and
//! concurrent identical requests collapse to one construction.

use etir::{Action, Etir};
use gensor::Gensor;
use hardware::GpuSpec;
use models::pipeline::compile_model;
use proptest::prelude::*;
use schedcache::{CacheKey, CachedTuner, Outcome, ScheduleCache, Store};
use simgpu::{CompiledKernel, Tuner};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tensor_expr::OpSpec;

fn tmpfile(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("schedcache-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Structural equality that is *stricter* than `PartialEq` on floats:
/// every number must round-trip to the same bits (`-0.0` ≠ `0.0`,
/// and integer/float JSON flavors must not drift).
fn bits_equal(a: &serde_json::Value, b: &serde_json::Value) -> bool {
    use serde_json::Value::*;
    match (a, b) {
        (Null, Null) => true,
        (Bool(x), Bool(y)) => x == y,
        (U64(x), U64(y)) => x == y,
        (I64(x), I64(y)) => x == y,
        (F64(x), F64(y)) => x.to_bits() == y.to_bits(),
        (Str(x), Str(y)) => x == y,
        (Array(x), Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| bits_equal(p, q))
        }
        (Object(x), Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && bits_equal(va, vb))
        }
        _ => false,
    }
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (8u64..512, 8u64..256, 8u64..512).prop_map(|(m, k, n)| OpSpec::gemm(m, k, n)),
        (16u64..1024, 8u64..256).prop_map(|(m, n)| OpSpec::gemv(m, n)),
        (
            1u64..4,
            1u64..16,
            7u64..30,
            7u64..30,
            1u64..16,
            1u64..4,
            1u64..3,
            0u64..2
        )
            .prop_map(|(n, ci, h, w, co, k, s, p)| {
                let k = k.min(h).min(w);
                OpSpec::conv2d(n, ci, h, w, co, k, k, s, p)
            }),
    ]
}

/// An arbitrary feasible schedule: a pseudo-random walk from the initial
/// state, keeping only launchable intermediate states.
fn arb_schedule(op: &OpSpec, spec: &GpuSpec, choices: &[u8]) -> Etir {
    let mut e = Etir::initial(op.clone(), spec);
    for &c in choices {
        let acts = Action::enumerate(&e);
        if acts.is_empty() {
            break;
        }
        let next = e.apply(&acts[c as usize % acts.len()]);
        if etir::analytics::MemCheck::check(&next, spec).fits() {
            e = next;
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Any schedule persisted to the store reloads as the identical `Etir`
    /// with a bit-identical `KernelReport`.
    #[test]
    fn store_round_trip_is_bit_identical(
        op in arb_op(),
        choices in proptest::collection::vec(any::<u8>(), 0..24),
        case in 0u64..u64::MAX,
    ) {
        let spec = GpuSpec::rtx4090();
        let e = arb_schedule(&op, &spec, &choices);
        let report = simgpu::simulate(&e, &spec).expect("walk kept feasibility");
        let kernel = CompiledKernel {
            etir: e.clone(),
            report,
            wall_time_s: 0.037,
            simulated_tuning_s: 0.0,
            candidates_evaluated: 9,
        };
        let key = CacheKey::new(&op, &spec, "Gensor");
        let rec = schedcache::store::record(key, op.label(), "Gensor", &kernel);

        let store = Store::open(tmpfile(&format!("prop-{case}")));
        store.append(&rec).unwrap();
        let (loaded, rep) = store.load().unwrap();
        let _ = std::fs::remove_file(store.path());
        prop_assert_eq!(rep.loaded, 1);
        prop_assert_eq!(rep.corrupt, 0);
        prop_assert_eq!(&loaded[0].etir, &e);
        prop_assert_eq!(loaded[0].key, key);
        let before = serde_json::to_value(&kernel.report).unwrap();
        let after = serde_json::to_value(&loaded[0].report).unwrap();
        prop_assert!(bits_equal(&before, &after), "report floats drifted:\n{before:?}\nvs\n{after:?}");
    }
}

#[test]
fn corrupt_lines_survive_and_are_counted() {
    let store = Store::open(tmpfile("corrupt"));
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(256, 128, 256);
    let e = Etir::initial(op.clone(), &spec);
    let kernel = CompiledKernel {
        etir: e,
        report: simgpu::simulate(&Etir::initial(op.clone(), &spec), &spec).unwrap(),
        wall_time_s: 0.01,
        simulated_tuning_s: 0.0,
        candidates_evaluated: 1,
    };
    let rec = schedcache::store::record(
        CacheKey::new(&op, &spec, "Gensor"),
        op.label(),
        "Gensor",
        &kernel,
    );
    store.append(&rec).unwrap();
    // A crash-truncated tail after a good record.
    let mut text = std::fs::read_to_string(store.path()).unwrap();
    text.push_str(&text.clone()[..40]);
    std::fs::write(store.path(), &text).unwrap();
    let (loaded, rep) = store.load().unwrap();
    assert_eq!(loaded.len(), 1);
    assert_eq!(rep.loaded, 1);
    assert_eq!(rep.corrupt, 0, "a torn tail is recovery, not corruption");
    assert_eq!(
        rep.recovered_truncated, 1,
        "truncated tail counted, not fatal"
    );
}

/// A tuner that counts constructions and is slow enough that concurrent
/// requests genuinely race.
struct CountingTuner {
    builds: AtomicU64,
}

impl Tuner for CountingTuner {
    fn name(&self) -> &'static str {
        "Counting"
    }

    fn compile(&self, op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
        self.builds.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(40));
        let e = Etir::initial(op.clone(), spec);
        let report = simgpu::simulate(&e, spec).unwrap();
        CompiledKernel {
            etir: e,
            report,
            wall_time_s: 0.04,
            simulated_tuning_s: 0.0,
            candidates_evaluated: 1,
        }
    }
}

#[test]
fn n_concurrent_identical_requests_run_one_construction() {
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(1024, 512, 512);
    let inner = CountingTuner {
        builds: AtomicU64::new(0),
    };
    let cache = Arc::new(ScheduleCache::in_memory());
    let tuner = CachedTuner::new(&inner, cache.clone());

    let outcomes = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let tuner = &tuner;
                let op = &op;
                let spec = &spec;
                s.spawn(move |_| tuner.compile_with_outcome(op, spec).1)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    })
    .unwrap();

    assert_eq!(
        inner.builds.load(Ordering::SeqCst),
        1,
        "exactly one construction across 8 concurrent identical requests"
    );
    assert_eq!(outcomes.iter().filter(|o| **o == Outcome::Built).count(), 1);
    let s = cache.stats();
    assert_eq!(s.misses, 1);
    assert_eq!(s.hits + s.coalesced, 7);
}

#[test]
fn warm_model_recompile_is_ten_times_faster_and_fully_cached() {
    let spec = GpuSpec::rtx4090();
    let graph = models::zoo::bert_small(4, 128);
    let gensor = Gensor::default();
    let cache = Arc::new(ScheduleCache::in_memory());
    let tuner = CachedTuner::for_gensor(&gensor, cache.clone());
    let unique = graph.fused_layers().count() as u64;

    let t0 = std::time::Instant::now();
    let cold = compile_model(&tuner, &graph, &spec);
    let cold_s = t0.elapsed().as_secs_f64();
    let after_cold = cache.stats();
    assert_eq!(
        after_cold.misses, unique,
        "every layer was constructed once"
    );
    assert_eq!(after_cold.hits, 0);

    let t1 = std::time::Instant::now();
    let warm = compile_model(&tuner, &graph, &spec);
    let warm_s = t1.elapsed().as_secs_f64();
    let after_warm = cache.stats();
    assert_eq!(
        after_warm.misses, unique,
        "no new constructions on re-compile"
    );
    assert_eq!(after_warm.hits, unique, "every layer answered from cache");

    assert_eq!(warm.pass_time_us, cold.pass_time_us, "identical schedules");
    assert_eq!(warm.tuning_s, 0.0, "hits carry zero tuning cost");
    assert!(
        cold_s >= warm_s * 10.0,
        "warm path must be ≥10× faster: cold {cold_s:.4}s vs warm {warm_s:.4}s"
    );
}

#[test]
fn cache_persists_schedules_across_reopen() {
    let path = tmpfile("reopen");
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(768, 384, 768);
    let first_etir;
    {
        let inner = CountingTuner {
            builds: AtomicU64::new(0),
        };
        let cache = Arc::new(ScheduleCache::open(&path).unwrap());
        let tuner = CachedTuner::new(&inner, cache);
        let (k, o) = tuner.compile_with_outcome(&op, &spec);
        assert_eq!(o, Outcome::Built);
        first_etir = k.etir;
    }
    // "New process": reopen the same file; the schedule must come back
    // without any construction.
    let inner = CountingTuner {
        builds: AtomicU64::new(0),
    };
    let cache = Arc::new(ScheduleCache::open(&path).unwrap());
    assert_eq!(cache.stats().loaded_from_disk, 1);
    let tuner = CachedTuner::new(&inner, cache);
    let (k, o) = tuner.compile_with_outcome(&op, &spec);
    assert_eq!(o, Outcome::Hit);
    assert_eq!(k.etir, first_etir);
    assert_eq!(inner.builds.load(Ordering::SeqCst), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_record_is_rejected_at_load_and_never_served() {
    let path = tmpfile("verify-reject");
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(768, 384, 768);
    {
        let inner = CountingTuner {
            builds: AtomicU64::new(0),
        };
        let cache = Arc::new(ScheduleCache::open(&path).unwrap());
        let tuner = CachedTuner::new(&inner, cache);
        let (_, o) = tuner.compile_with_outcome(&op, &spec);
        assert_eq!(o, Outcome::Built);
    }
    // Damage the banked record's *payload* in place: the line still parses
    // as a CacheRecord, but the schedule inside is illegal (an unroll
    // factor that is not a power of two).
    let line = std::fs::read_to_string(&path).unwrap();
    // Strip the `F1 <len> <crc>` frame to reach the JSON payload.
    let payload = line.trim().splitn(4, ' ').nth(3).unwrap();
    let mut rec: schedcache::CacheRecord = serde_json::from_str(payload).unwrap();
    rec.etir.unroll = 3;
    std::fs::write(
        &path,
        schedcache::store::frame_line(&serde_json::to_string(&rec).unwrap()),
    )
    .unwrap();

    // "New process": the verifier refuses the record at load — counted,
    // not resident — and the request reruns the construction instead of
    // serving the damaged schedule.
    let inner = CountingTuner {
        builds: AtomicU64::new(0),
    };
    let cache = Arc::new(ScheduleCache::open(&path).unwrap());
    let stats = cache.stats();
    assert_eq!(stats.verifier_rejected, 1, "reject must be counted");
    assert_eq!(stats.corrupt_lines, 0, "the line itself parsed fine");
    assert_eq!(cache.len(), 0, "damaged record must not become resident");
    let tuner = CachedTuner::new(&inner, cache.clone());
    let (k, o) = tuner
        .compile_verified(&op, &spec)
        .expect("rebuilt schedule is legal");
    assert_eq!(o, Outcome::Built);
    assert_ne!(k.etir.unroll, 3);
    assert_eq!(
        inner.builds.load(Ordering::SeqCst),
        1,
        "rebuilt, not served"
    );
    let _ = std::fs::remove_file(&path);
}
