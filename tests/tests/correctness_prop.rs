//! Property-based correctness: *any* schedule the construction graph can
//! reach must compute the same result as the naive reference — the
//! foundational invariant behind every performance claim.

use etir::{Action, Etir};
use hardware::GpuSpec;
use proptest::prelude::*;
use tensor_expr::OpSpec;

/// A small operator of arbitrary class (interp-friendly sizes; deliberately
/// non-power-of-two so ragged tiles and halos are exercised).
fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (3u64..40, 2u64..24, 3u64..40).prop_map(|(m, k, n)| OpSpec::gemm(m, k, n)),
        (3u64..64, 2u64..48).prop_map(|(m, n)| OpSpec::gemv(m, n)),
        (
            1u64..3,
            1u64..6,
            7u64..14,
            7u64..14,
            1u64..6,
            1u64..4,
            1u64..3,
            0u64..2
        )
            .prop_map(|(n, ci, h, w, co, k, s, p)| {
                let k = k.min(h).min(w); // kernel no larger than input
                OpSpec::conv2d(n, ci, h, w, co, k, k, s, p)
            }),
        (1u64..3, 1u64..6, 6u64..14, 6u64..14, 2u64..4, 1u64..3).prop_map(|(n, c, h, w, f, s)| {
            let f = f.min(h).min(w);
            OpSpec::avg_pool2d(n, c, h, w, f, s)
        }),
        (5u64..200, 1u32..4).prop_map(|(e, i)| OpSpec::elementwise(e, i, 1)),
    ]
}

/// Apply a pseudo-random action sequence (indices into the applicable-edge
/// list at each step), mirroring an arbitrary graph walk.
fn apply_walk(op: &OpSpec, spec: &GpuSpec, choices: &[u8]) -> Etir {
    let mut e = Etir::initial(op.clone(), spec);
    for &c in choices {
        let acts = Action::enumerate(&e);
        if acts.is_empty() {
            break;
        }
        let a = acts[c as usize % acts.len()];
        let next = e.apply(&a);
        // Keep states interp-executable (full-capacity filter).
        if etir::analytics::MemCheck::check(&next, spec).fits() {
            e = next;
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any reachable feasible schedule computes the reference result.
    #[test]
    fn arbitrary_walks_preserve_semantics(
        op in arb_op(),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let spec = GpuSpec::rtx4090();
        let e = apply_walk(&op, &spec, &choices);
        interp::check_schedule(&e);
    }

    /// Action application preserves the ETIR struct invariants and
    /// inverse edges exactly undo forward edges.
    #[test]
    fn walks_preserve_etir_invariants(
        op in arb_op(),
        choices in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let spec = GpuSpec::rtx4090();
        let mut e = Etir::initial(op, &spec);
        for &c in &choices {
            let acts = Action::enumerate(&e);
            if acts.is_empty() { break; }
            let a = acts[c as usize % acts.len()];
            let next = e.apply(&a);
            prop_assert_eq!(next.validate(), Ok(()));
            if let Some(inv) = a.inverse() {
                prop_assert!(next.can_apply(&inv));
                prop_assert_eq!(next.apply(&inv), e.clone());
            }
            e = next;
        }
    }

    /// The capacity check is monotone under tile growth: if a grown state
    /// fits, shrinking any tile (where legal) also fits.
    #[test]
    fn capacity_check_monotone_under_inverse_tiling(
        op in arb_op(),
        choices in proptest::collection::vec(any::<u8>(), 0..25),
    ) {
        let spec = GpuSpec::orin_nano();
        let e = apply_walk(&op, &spec, &choices);
        prop_assume!(etir::analytics::MemCheck::check_capacity(&e, &spec).fits());
        for a in Action::enumerate(&e) {
            if a.is_inverse() {
                let shrunk = e.apply(&a);
                prop_assert!(
                    etir::analytics::MemCheck::check_capacity(&shrunk, &spec).fits(),
                    "shrinking {:?} broke capacity", a
                );
            }
        }
    }
}
