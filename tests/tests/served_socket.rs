//! End-to-end tests for the `gensor serve` daemon: real Unix sockets,
//! real threads, one shared single-flight cache behind them all.

use etir::Etir;
use hardware::GpuSpec;
use served::{
    Client, ClientError, ErrKind, MethodRegistry, Request, Response, Server, ServerConfig,
    ServerHandle, WireOutcome, PROTO_VERSION,
};
use simgpu::{CompiledKernel, Tuner};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tensor_expr::OpSpec;

fn sock(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("served-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// A tuner that counts constructions and sleeps long enough that
/// concurrent requests genuinely overlap.
struct SleepTuner {
    builds: Arc<AtomicU64>,
    sleep: Duration,
}

impl Tuner for SleepTuner {
    fn name(&self) -> &'static str {
        "Sleep"
    }

    fn compile(&self, op: &OpSpec, spec: &GpuSpec) -> CompiledKernel {
        self.builds.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.sleep);
        let e = Etir::initial(op.clone(), spec);
        let report = simgpu::simulate(&e, spec).unwrap();
        CompiledKernel {
            etir: e,
            report,
            wall_time_s: self.sleep.as_secs_f64(),
            simulated_tuning_s: 0.0,
            candidates_evaluated: 1,
        }
    }
}

/// Spin up a daemon on its own thread; returns the socket path, a
/// shutdown handle, and the join handle for the drain report.
fn start(
    tag: &str,
    registry: MethodRegistry,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (
    PathBuf,
    ServerHandle,
    std::thread::JoinHandle<served::DrainReport>,
) {
    let path = sock(tag);
    let mut cfg = ServerConfig::new(&path);
    cfg.workers = 8;
    cfg.max_inflight = 16;
    tweak(&mut cfg);
    let cache = Arc::new(schedcache::ScheduleCache::in_memory());
    let server = Server::bind(cfg, cache, registry).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    // The listener exists as soon as `bind` returns, so clients can
    // connect immediately — no readiness dance needed.
    (path, handle, join)
}

fn sleepy_registry(builds: &Arc<AtomicU64>, sleep: Duration) -> MethodRegistry {
    let mut r = MethodRegistry::empty();
    r.register(
        "sleep",
        Box::new(SleepTuner {
            builds: builds.clone(),
            sleep,
        }),
    );
    r
}

#[test]
fn eight_concurrent_clients_share_one_construction() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start(
        "single-flight",
        sleepy_registry(&builds, Duration::from_millis(60)),
        |_| {},
    );
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(1024, 512, 512);

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let path = path.clone();
            let op = op.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&path).unwrap();
                c.compile(&op, &spec, "sleep", None).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        builds.load(Ordering::SeqCst),
        1,
        "eight clients, one construction"
    );
    let built = results
        .iter()
        .filter(|(_, o)| *o == WireOutcome::Built)
        .count();
    assert_eq!(built, 1);
    let first = &results[0].0;
    for (k, _) in &results {
        assert_eq!(k.etir, first.etir, "every client got the same schedule");
    }

    // The server's own counters agree.
    let mut c = Client::connect(&path).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert_eq!(stats.hits + stats.coalesced, 7);
    assert_eq!(stats.compiles, 8);
    assert!(stats.latency_p50_us > 0);

    c.shutdown().unwrap();
    join.join().unwrap();
    assert!(!path.exists(), "drain removes the socket file");
}

#[test]
fn admission_gate_sheds_with_busy_when_full() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start(
        "busy",
        sleepy_registry(&builds, Duration::from_millis(400)),
        |cfg| {
            cfg.workers = 1;
            cfg.max_inflight = 1;
        },
    );
    let spec = GpuSpec::rtx4090();

    // Occupy the only slot with a slow build…
    let p2 = path.clone();
    let s2 = spec.clone();
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(&p2).unwrap();
        c.compile(&OpSpec::gemm(512, 256, 512), &s2, "sleep", None)
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(120));

    // …then a second, different op must be shed, not queued.
    let mut c = Client::connect(&path).unwrap();
    let err = c
        .compile(&OpSpec::gemm(2048, 256, 512), &spec, "sleep", None)
        .unwrap_err();
    match err {
        ClientError::Busy {
            inflight,
            max_inflight,
        } => {
            assert_eq!((inflight, max_inflight), (1, 1));
        }
        other => panic!("expected Busy, got {other}"),
    }

    let (_, outcome) = slow.join().unwrap();
    assert_eq!(outcome, WireOutcome::Built, "admitted request completed");
    let stats = c.stats().unwrap();
    assert_eq!(stats.shed, 1);
    assert_eq!(builds.load(Ordering::SeqCst), 1, "shed request never ran");

    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_work_and_flushes_the_store() {
    let dir = std::env::temp_dir().join("served-integration-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join(format!("drain-store-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store_path);

    let builds = Arc::new(AtomicU64::new(0));
    let path = sock("drain");
    let mut cfg = ServerConfig::new(&path);
    cfg.workers = 2;
    cfg.max_inflight = 4;
    let cache = Arc::new(schedcache::ScheduleCache::open(&store_path).unwrap());
    let server = Server::bind(
        cfg,
        cache,
        sleepy_registry(&builds, Duration::from_millis(300)),
    )
    .unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    // A slow compile is mid-construction when the shutdown lands.
    let p2 = path.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(&p2).unwrap();
        c.compile(
            &OpSpec::gemm(768, 384, 768),
            &GpuSpec::rtx4090(),
            "sleep",
            None,
        )
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut c = Client::connect(&path).unwrap();
    c.shutdown().unwrap();

    let report = join.join().unwrap();
    assert_eq!(report.reason, "shutdown-frame");

    // The in-flight construction completed and its answer reached the
    // client — drain waits, it does not abort.
    let (kernel, outcome) = inflight
        .join()
        .unwrap()
        .expect("in-flight request answered");
    assert_eq!(outcome, WireOutcome::Built);
    assert!(kernel.report.gflops > 0.0);
    assert_eq!(builds.load(Ordering::SeqCst), 1);

    // The store was flushed on the way out: a fresh cache reloads the
    // schedule built during drain.
    let reopened = schedcache::ScheduleCache::open(&store_path).unwrap();
    assert_eq!(reopened.stats().loaded_from_disk, 1);
    assert!(!path.exists(), "socket file removed");
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn version_mismatch_and_garbage_frames_are_rejected() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start("garbage", sleepy_registry(&builds, Duration::ZERO), |_| {});

    // Wrong protocol version → typed error.
    {
        let mut s = UnixStream::connect(&path).unwrap();
        served::proto::write_frame(
            &mut s,
            &Request::Hello {
                proto: 999,
                token: None,
            },
        )
        .unwrap();
        let reply: Response = served::proto::read_frame(&mut s).unwrap();
        match reply {
            Response::Error { kind, .. } => assert_eq!(kind, ErrKind::UnsupportedProto),
            other => panic!("expected UnsupportedProto, got {other:?}"),
        }
    }

    // An oversize length prefix → connection dropped without a crash.
    {
        let mut s = UnixStream::connect(&path).unwrap();
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        s.flush().unwrap();
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server closes on an oversize header");
    }

    // Garbage after a valid handshake → Malformed error frame.
    {
        let mut s = UnixStream::connect(&path).unwrap();
        served::proto::write_frame(
            &mut s,
            &Request::Hello {
                proto: PROTO_VERSION,
                token: None,
            },
        )
        .unwrap();
        let _: Response = served::proto::read_frame(&mut s).unwrap();
        let garbage = b"not json at all";
        s.write_all(&(garbage.len() as u32).to_be_bytes()).unwrap();
        s.write_all(garbage).unwrap();
        s.flush().unwrap();
        let reply: Response = served::proto::read_frame(&mut s).unwrap();
        match reply {
            Response::Error { kind, .. } => assert_eq!(kind, ErrKind::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    // A truncated frame (header promises more than arrives) is counted,
    // not fatal.
    {
        let mut s = UnixStream::connect(&path).unwrap();
        served::proto::write_frame(
            &mut s,
            &Request::Hello {
                proto: PROTO_VERSION,
                token: None,
            },
        )
        .unwrap();
        let _: Response = served::proto::read_frame(&mut s).unwrap();
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(b"short").unwrap();
        drop(s); // close mid-frame
    }
    std::thread::sleep(Duration::from_millis(250));

    // The daemon is still healthy and counted every abuse.
    let mut c = Client::connect(&path).unwrap();
    c.ping().unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.proto_errors >= 4, "{stats:?}");
    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn unknown_method_and_model_answer_typed_errors() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start(
        "typed-errors",
        sleepy_registry(&builds, Duration::ZERO),
        |_| {},
    );
    let spec = GpuSpec::rtx4090();
    let mut c = Client::connect(&path).unwrap();

    let err = c
        .compile(&OpSpec::gemm(64, 64, 64), &spec, "frobnicate", None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Remote {
                kind: ErrKind::UnknownMethod,
                ..
            }
        ),
        "{err}"
    );

    let reply = c.batch("not-a-model", 1, &spec, "sleep").unwrap_err();
    assert!(
        matches!(
            reply,
            ClientError::Remote {
                kind: ErrKind::UnknownModel,
                ..
            }
        ),
        "{reply}"
    );

    // The connection survives typed errors.
    c.ping().unwrap();
    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn batch_precompiles_a_model_through_the_shared_cache() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start("batch", sleepy_registry(&builds, Duration::ZERO), |_| {});
    let spec = GpuSpec::rtx4090();
    let graph = models::zoo::bert_small(1, 128);
    let unique = graph.fused_layers().count() as u64;

    let mut c = Client::connect(&path).unwrap();
    match c.batch("bert", 1, &spec, "sleep").unwrap() {
        Response::BatchDone {
            requested,
            built,
            hits,
            coalesced,
            failed,
            wall_s,
        } => {
            assert_eq!(requested, unique);
            assert_eq!(built + hits + coalesced, unique);
            assert_eq!(built, builds.load(Ordering::SeqCst));
            assert_eq!(failed, 0);
            assert!(wall_s >= 0.0);
        }
        other => panic!("expected BatchDone, got {other:?}"),
    }

    // Compiling one of the model's ops afterwards is a pure hit.
    let op = graph.fused_layers().next().unwrap().op.clone();
    let (_, outcome) = c.compile(&op, &spec, "sleep", None).unwrap();
    assert_eq!(outcome, WireOutcome::Hit);

    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn expired_requests_answer_deadline_exceeded_but_still_bank_the_kernel() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start(
        "deadline",
        sleepy_registry(&builds, Duration::from_millis(600)),
        |cfg| {
            cfg.deadline = Duration::from_millis(100);
        },
    );
    let spec = GpuSpec::rtx4090();
    let op = OpSpec::gemm(320, 320, 320);
    let mut c = Client::connect(&path).unwrap();

    let err = c.compile(&op, &spec, "sleep", None).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Remote {
                kind: ErrKind::DeadlineExceeded,
                ..
            }
        ),
        "{err}"
    );

    // The construction was not cancelled: once it lands, a retry is an
    // instant hit.
    std::thread::sleep(Duration::from_millis(700));
    let (_, outcome) = c.compile(&op, &spec, "sleep", None).unwrap();
    assert_eq!(outcome, WireOutcome::Hit, "abandoned work is banked");
    assert_eq!(builds.load(Ordering::SeqCst), 1);
    let stats = c.stats().unwrap();
    assert_eq!(stats.deadline_expired, 1);

    c.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn programmatic_handle_drains_without_a_client() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, handle, join) = start(
        "handle-drain",
        sleepy_registry(&builds, Duration::ZERO),
        |_| {},
    );
    let mut c = Client::connect(&path).unwrap();
    c.ping().unwrap();
    drop(c);
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.reason, "shutdown-frame");
    assert_eq!(report.stats.connections, 1);
    assert!(!path.exists());
}

#[test]
fn metrics_frame_answers_prometheus_text_and_stats_split_latency() {
    let builds = Arc::new(AtomicU64::new(0));
    let (path, _handle, join) = start(
        "metrics",
        sleepy_registry(&builds, Duration::from_millis(30)),
        |_| {},
    );
    let spec = GpuSpec::rtx4090();
    let mut c = Client::connect(&path).unwrap();
    c.compile(&OpSpec::gemm(512, 256, 512), &spec, "sleep", None)
        .unwrap();

    // The Metrics frame answers a parseable Prometheus document carrying
    // the daemon's queue/service histograms.
    let text = c.metrics().unwrap();
    let samples = obs::prometheus::parse_samples(&text);
    assert!(!samples.is_empty(), "{text}");
    for name in [
        "gensor_serve_queue_us_count",
        "gensor_serve_service_us_count",
    ] {
        assert!(
            samples.iter().any(|s| s.name == name && s.value >= 1.0),
            "missing {name} in:\n{text}"
        );
    }

    // Stats now splits request latency into queue wait and service time;
    // a 30 ms sleepy build must dominate the service side.
    let stats = c.stats().unwrap();
    assert!(stats.service_p50_us >= 25_000, "{stats:?}");
    assert!(
        stats.queue_p50_us + stats.service_p50_us >= stats.latency_p50_us,
        "{stats:?}"
    );

    c.shutdown().unwrap();
    join.join().unwrap();
}
