//! Property tests for the learned-benefit pruned walk (DESIGN §12):
//! a model trained on real construction data keeps walk quality within
//! ε of exact scoring while evaluating several times fewer exact
//! benefit formulas, and out-of-distribution operators always fall
//! back to the exact path — byte-identically to having no pruner.

use gensor::{Gensor, GensorConfig, Walk};
use hardware::GpuSpec;
use learned::{BenefitModel, Pruner, TrainConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgpu::Tuner;
use std::sync::{Arc, Mutex, OnceLock};
use tensor_expr::OpSpec;

/// Quality contract for pruned construction (DESIGN §12): across a
/// preset's zoo sweep the *geomean* simulated time may trail the exact
/// walk's by at most `EPSILON`, and no single operator may lose more
/// than `WORST_CASE`. Pruning is Monte-Carlo — individual ops can win
/// or lose a little — but it must never change the aggregate story.
const EPSILON: f64 = 0.15;
const WORST_CASE: f64 = 0.5;

/// The dataset recorder is process-global; collections must not
/// interleave or a GEMM-only model would see conv samples.
fn recorder_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Tune `ops` unpruned with the in-memory recorder installed and fit
/// the default stumps model on the harvested (features → exact benefit)
/// pairs.
fn train_on(ops: &[OpSpec], spec: &GpuSpec) -> BenefitModel {
    let _g = recorder_lock().lock().unwrap_or_else(|p| p.into_inner());
    learned::dataset::install_memory();
    let tuner = Gensor::with_config(GensorConfig {
        chains: 2,
        ..Default::default()
    });
    for op in ops {
        let _ = tuner.compile(op, spec);
    }
    let report = learned::dataset::uninstall();
    let features: Vec<Vec<f64>> = report.samples.iter().map(|s| s.features.clone()).collect();
    let benefits: Vec<f64> = report.samples.iter().map(|s| s.benefit).collect();
    BenefitModel::train(&features, &benefits, &TrainConfig::default()).expect("enough samples")
}

/// A small conv-dominated zoo, mirroring the real model zoo's operator
/// mix (ResNet/MobileNet are mostly convolutions).
fn zoo() -> Vec<OpSpec> {
    vec![
        OpSpec::gemm(1024, 512, 2048),
        OpSpec::gemv(8192, 1024),
        OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1),
        OpSpec::conv2d(4, 64, 14, 14, 128, 3, 3, 1, 1),
        OpSpec::avg_pool2d(16, 48, 48, 48, 2, 2),
    ]
}

/// One pruner per preset, trained once on the zoo and shared by every
/// test in this binary (training tunes every zoo op).
fn zoo_pruner(spec: &GpuSpec) -> Arc<Pruner> {
    static RTX: OnceLock<Arc<Pruner>> = OnceLock::new();
    static ORIN: OnceLock<Arc<Pruner>> = OnceLock::new();
    let cell = if spec.name.contains("Orin") {
        &ORIN
    } else {
        &RTX
    };
    cell.get_or_init(|| Arc::new(Pruner::new(train_on(&zoo(), spec))))
        .clone()
}

#[test]
fn pruned_construction_quality_stays_within_epsilon_of_unpruned() {
    for spec in [GpuSpec::rtx4090(), GpuSpec::orin_nano()] {
        let pruner = zoo_pruner(&spec);
        let mut ln_ratio_sum = 0.0;
        let mut n = 0usize;
        for op in zoo() {
            let base = GensorConfig {
                chains: 4,
                ..Default::default()
            };
            let exact = Gensor::with_config(base.clone()).compile(&op, &spec);
            let pruned = Gensor::with_config(base.with_pruner(pruner.clone())).compile(&op, &spec);
            let vr = verify::verify_schedule(&pruned.etir, Some(&spec));
            assert!(
                vr.is_legal(),
                "{} on {}: pruned schedule is illegal:\n{}",
                op.label(),
                spec.name,
                vr.render()
            );
            let ratio = pruned.report.time_us / exact.report.time_us;
            assert!(
                ratio <= 1.0 + WORST_CASE,
                "{} on {}: pruned {:.1} µs vs exact {:.1} µs ({ratio:.3}×)",
                op.label(),
                spec.name,
                pruned.report.time_us,
                exact.report.time_us
            );
            ln_ratio_sum += ratio.ln();
            n += 1;
        }
        let geomean = (ln_ratio_sum / n as f64).exp();
        assert!(
            geomean <= 1.0 + EPSILON,
            "{}: pruned zoo geomean {geomean:.3}× exceeds 1+ε",
            spec.name
        );
    }
}

#[test]
fn out_of_distribution_ops_always_fall_back_to_exact_scoring() {
    let spec = GpuSpec::rtx4090();
    // GEMM-only training: conv/pool iteration-space ranks sit outside
    // every observed feature range, so OOD detection must trip.
    let model = train_on(
        &[OpSpec::gemm(1024, 512, 2048), OpSpec::gemm(512, 512, 512)],
        &spec,
    );
    let pruner = Arc::new(Pruner::new(model));
    for op in [
        OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1),
        OpSpec::avg_pool2d(16, 48, 48, 48, 2, 2),
    ] {
        let mut walk = Walk::default();
        walk.policy.pruner = Some(pruner.clone());
        let rec = walk.run(&op, &spec, &mut StdRng::seed_from_u64(9));
        assert_eq!(
            rec.pruned_steps,
            0,
            "{}: an OOD op must never be pruned",
            op.label()
        );
        assert!(rec.fallback_steps > 0, "{}", op.label());
        // The fallback path must be byte-identical to having no pruner:
        // same RNG draw sequence, same trajectory, same exact-eval count.
        let plain = Walk::default().run(&op, &spec, &mut StdRng::seed_from_u64(9));
        assert_eq!(rec.terminal, plain.terminal, "{}", op.label());
        assert_eq!(rec.top_results, plain.top_results, "{}", op.label());
        assert_eq!(
            rec.exact_benefit_evals,
            plain.exact_benefit_evals,
            "{}",
            op.label()
        );
    }
}

#[test]
fn pruned_walks_evaluate_at_least_5x_fewer_exact_benefits_on_the_zoo() {
    let spec = GpuSpec::rtx4090();
    let pruner = zoo_pruner(&spec);
    // The conv-dominated slice of the zoo, where full exact scoring is
    // most expensive (25 candidate actions per step vs a GEMM's 13).
    let ops = [
        OpSpec::conv2d(8, 32, 28, 28, 64, 3, 3, 1, 1),
        OpSpec::conv2d(4, 64, 14, 14, 128, 3, 3, 1, 1),
        OpSpec::conv2d(8, 16, 56, 56, 32, 3, 3, 1, 1),
        OpSpec::gemm(1024, 512, 2048),
    ];
    let mut exact_total = 0u64;
    let mut pruned_total = 0u64;
    let mut pruned_steps = 0u32;
    let mut fallback_steps = 0u32;
    for (i, op) in ops.iter().enumerate() {
        let plain = Walk::default().run(op, &spec, &mut StdRng::seed_from_u64(i as u64));
        let mut walk = Walk::default();
        walk.policy.pruner = Some(pruner.clone());
        let rec = walk.run(op, &spec, &mut StdRng::seed_from_u64(i as u64));
        assert!(rec.model_predictions > 0, "{}", op.label());
        exact_total += plain.exact_benefit_evals;
        pruned_total += rec.exact_benefit_evals;
        pruned_steps += rec.pruned_steps;
        fallback_steps += rec.fallback_steps;
    }
    assert!(
        pruned_steps > 3 * fallback_steps,
        "pruning must dominate in-distribution: {pruned_steps} pruned vs {fallback_steps} fallback"
    );
    let ratio = exact_total as f64 / pruned_total.max(1) as f64;
    assert!(ratio >= 5.0, "exact-eval reduction only {ratio:.2}× (< 5×)");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Whatever the seed and in-distribution operator, a pruned walk
    /// terminates within the annealing budget, harvests only states
    /// that fit the memory hierarchy, and never evaluates more exact
    /// benefits than the unpruned walk.
    #[test]
    fn pruned_walks_terminate_legally_and_never_cost_more(
        seed in 0u64..(1u64 << 32),
        idx in 0usize..5,
    ) {
        let spec = GpuSpec::rtx4090();
        let op = zoo()[idx].clone();
        let mut walk = Walk::default();
        walk.policy.pruner = Some(zoo_pruner(&spec));
        let rec = walk.run(&op, &spec, &mut StdRng::seed_from_u64(seed));
        let plain = Walk::default().run(&op, &spec, &mut StdRng::seed_from_u64(seed));
        let rank = op.spatial_extents().len() + op.reduce_extents().len();
        prop_assert!(rec.steps <= walk.max_steps_for_rank(rank));
        prop_assert!(rec.exact_benefit_evals <= plain.exact_benefit_evals,
            "pruned {} vs plain {}", rec.exact_benefit_evals, plain.exact_benefit_evals);
        for s in &rec.top_results {
            prop_assert!(
                etir::analytics::MemCheck::check_capacity(s, &spec).fits(),
                "harvested unlaunchable state {}",
                s.describe()
            );
        }
        let vr = verify::verify_schedule(&rec.terminal, Some(&spec));
        prop_assert!(vr.is_legal(), "terminal illegal:\n{}", vr.render());
    }
}
