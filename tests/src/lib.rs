//! Integration-test host package (tests live in `tests/tests/`).
